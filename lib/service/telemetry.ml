(* A minimal HTTP/1.0 telemetry endpoint over stdlib Unix sockets.

   One domain runs a sequential accept loop; every connection gets one
   request parsed and one response written, then the socket is closed
   (Connection: close).  That is plenty for scrape-style traffic
   (Prometheus, curl, health checks) and keeps the server at zero
   dependencies.  The registry and slow log lock internally, so reading
   them from the server domain is safe while the optimizer writes. *)

module Metrics = Prairie_obs.Metrics
module Slow_log = Prairie_obs.Slow_log

type t = {
  sock : Unix.file_descr;
  addr : string;
  port : int;  (* actual port: resolved after bind when asked for 0 *)
  stopping : bool Atomic.t;
  server : unit Domain.t;
}

let port t = t.port
let addr t = t.addr

let http_status = function
  | 200 -> "200 OK"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | _ -> "400 Bad Request"

exception Client_deadline

(* SO_SNDTIMEO bounds each [write]; the deadline bounds the whole
   response, so a slow reader draining one buffer per timeout cannot
   hold the sequential accept loop indefinitely *)
let write_all ~deadline fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    if Unix.gettimeofday () > deadline then raise Client_deadline;
    pos := !pos + Unix.write_substring fd s !pos (n - !pos)
  done

let respond ~deadline fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      (http_status status) content_type (String.length body)
  in
  write_all ~deadline fd (head ^ body)

(* Read until the blank line ending the request head (we ignore bodies:
   every route is a GET) or until a small cap, whichever comes first. *)
let contains_terminator s =
  let n = String.length s in
  let rec go i =
    i + 4 <= n && (String.equal (String.sub s i 4) "\r\n\r\n" || go (i + 1))
  in
  go 0

(* SO_RCVTIMEO bounds each [read]; the overall deadline defeats the
   slow-loris shape (one byte per almost-timeout) that per-read timeouts
   alone cannot *)
let read_request ~deadline fd =
  let cap = 8192 in
  let buf = Bytes.create 1024 in
  let acc = Buffer.create 256 in
  let rec loop () =
    if
      Buffer.length acc >= cap
      || contains_terminator (Buffer.contents acc)
      || Unix.gettimeofday () > deadline
    then Buffer.contents acc
    else
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> Buffer.contents acc
      | n ->
        Buffer.add_subbytes acc buf 0 n;
        loop ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        Buffer.contents acc
  in
  loop ()

let parse_request_line req =
  match String.index_opt req '\r' with
  | None -> None
  | Some eol -> (
    match String.split_on_char ' ' (String.sub req 0 eol) with
    | [ meth; target; _version ] ->
      (* strip any query string; routes carry none *)
      let path =
        match String.index_opt target '?' with
        | Some q -> String.sub target 0 q
        | None -> target
      in
      Some (meth, path)
    | _ -> None)

let handle ~metrics ~slow_log ~deadline fd =
  let respond = respond ~deadline in
  let req = read_request ~deadline fd in
  match parse_request_line req with
  | None -> respond fd ~status:400 ~content_type:"text/plain" "bad request\n"
  | Some (meth, _) when meth <> "GET" ->
    respond fd ~status:405 ~content_type:"text/plain" "method not allowed\n"
  | Some (_, "/healthz") ->
    respond fd ~status:200 ~content_type:"text/plain" "ok\n"
  | Some (_, "/metrics") ->
    let body =
      match metrics with None -> "" | Some m -> Metrics.to_prometheus m
    in
    respond fd ~status:200
      ~content_type:"text/plain; version=0.0.4; charset=utf-8" body
  | Some (_, "/tracez") ->
    let body =
      match slow_log with
      | None -> "{\"threshold_s\":null,\"recorded\":0,\"entries\":[]}"
      | Some log -> Slow_log.to_json log
    in
    respond fd ~status:200 ~content_type:"application/json" body
  | Some (_, _) ->
    respond fd ~status:404 ~content_type:"text/plain" "not found\n"

let serve_loop sock stopping metrics slow_log client_timeout =
  let continue = ref true in
  while !continue && not (Atomic.get stopping) do
    match Unix.accept sock with
    | client, _ ->
      if Atomic.get stopping then Unix.close client
      else begin
        (* per-syscall timeouts in both directions; a client that is
           merely slow rather than silent is cut by the deadline below *)
        (try
           Unix.setsockopt_float client Unix.SO_RCVTIMEO client_timeout;
           Unix.setsockopt_float client Unix.SO_SNDTIMEO client_timeout
         with Unix.Unix_error _ -> ());
        let deadline = Unix.gettimeofday () +. client_timeout in
        Fun.protect
          ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
          (fun () ->
            try handle ~metrics ~slow_log ~deadline client with
            | Unix.Unix_error _ | Client_deadline -> ())
      end
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
      (* the listening socket was shut down under us: exit cleanly *)
      continue := false
  done

let start ?(addr = "127.0.0.1") ?metrics ?slow_log ?(client_timeout = 5.0)
    ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let client_timeout = max 0.01 client_timeout in
  let stopping = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        serve_loop sock stopping metrics slow_log client_timeout)
  in
  { sock; addr; port; stopping; server }

let stop t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    (* the accept loop may be blocked; shutting the listener down makes
       accept fail immediately, and a wake-up connection covers platforms
       where shutdown on a listening socket is not supported *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try
       let c = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close c with Unix.Unix_error _ -> ())
         (fun () ->
           Unix.connect c
             (Unix.ADDR_INET (Unix.inet_addr_of_string t.addr, t.port)))
     with Unix.Unix_error _ -> ());
    Domain.join t.server;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
