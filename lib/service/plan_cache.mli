(** A concurrency-safe LRU cache of winning plans.

    The plan service's shared state: entries are keyed by the pair
    ⟨rule-set name, query fingerprint⟩ (see {!Prairie.Expr.fingerprint}),
    so semantically identical requests against the same optimizer collide
    and repeated traffic skips the Volcano search entirely.  All operations
    take an internal mutex; the cache is the one structure the domain pool
    shares between workers.

    Invalidation: the cached plan depends on the rule set {e and} on the
    catalog statistics baked into its cost functions, so any catalog or
    rule-set change must be followed by {!invalidate} (one rule set) or
    {!clear} (everything). *)

type entry = {
  plan : Prairie_volcano.Plan.t option;  (** [None]: no plan exists (cached negative) *)
  cost : float;  (** infinity when [plan = None] *)
  groups : int;  (** memo equivalence classes of the original search *)
  budget_hit : bool;  (** did the original search degrade gracefully? *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** LRU capacity evictions *)
  invalidations : int;  (** entries dropped by invalidate/clear *)
}

type t

val create : ?capacity:int -> unit -> t
(** An empty cache holding at most [capacity] (default 1024, min 1)
    entries; beyond that the least-recently-used entry is evicted. *)

val capacity : t -> int
val length : t -> int

val find : t -> ruleset:string -> fingerprint:string -> entry option
(** Lookup; a hit refreshes the entry's recency and is counted in
    {!stats}. *)

val add : t -> ruleset:string -> fingerprint:string -> entry -> unit
(** Insert or refresh; replacing an existing key updates the entry in
    place (last write wins — workers racing on the same fingerprint
    produce equal-cost plans, so either is fine to keep). *)

val invalidate : t -> ruleset:string -> unit
(** Drop every entry of one rule set (after a catalog or rule change). *)

val clear : t -> unit
(** Drop everything; keeps the hit/miss counters. *)

val stats : t -> stats

val hit_rate : t -> float
(** hits / (hits + misses), 0 when no lookups have happened. *)

val pp_stats : Format.formatter -> t -> unit
