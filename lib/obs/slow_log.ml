(* Threshold-based slow-query log: a mutex-protected bounded ring of
   the most recent searches whose wall time met the threshold.  Unlike
   Trace/Span sinks this one is shared across serve workers, so every
   entry point locks. *)

type entry = {
  seq : int;
  at : float;  (* Unix.gettimeofday at completion *)
  ruleset : string;
  fingerprint : string;
  seconds : float;
  cost : float;
  groups : int;
  budget_hit : bool;
  cache_hit : bool;
}

type t = {
  mutex : Mutex.t;
  threshold : float;  (* seconds *)
  buf : entry option array;
  mutable n : int;  (* total recorded; next sequence number *)
}

let create ?(capacity = 256) ?(threshold = 0.1) () =
  if threshold < 0.0 then invalid_arg "Slow_log.create: negative threshold";
  {
    mutex = Mutex.create ();
    threshold;
    buf = Array.make (max 1 capacity) None;
    n = 0;
  }

let threshold t = t.threshold
let capacity t = Array.length t.buf

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let observe t ~ruleset ~fingerprint ~seconds ~cost ~groups ~budget_hit
    ~cache_hit =
  if seconds >= t.threshold then
    locked t (fun () ->
        let e =
          {
            seq = t.n;
            at = Unix.gettimeofday ();
            ruleset;
            fingerprint;
            seconds;
            cost;
            groups;
            budget_hit;
            cache_hit;
          }
        in
        t.buf.(t.n mod Array.length t.buf) <- Some e;
        t.n <- t.n + 1)

let seq t = locked t (fun () -> t.n)

let entries t =
  locked t (fun () ->
      let len = min t.n (Array.length t.buf) in
      let first = t.n - len in
      List.init len (fun i ->
          match t.buf.((first + i) mod Array.length t.buf) with
          | Some e -> e
          | None -> assert false))

let length t = List.length (entries t)
let dropped t = seq t - length t

let entry_to_json e =
  Printf.sprintf
    "{\"seq\":%d,\"at\":%s,\"ruleset\":%s,\"fingerprint\":%s,\"seconds\":%s,\"cost\":%s,\"groups\":%d,\"budget_hit\":%b,\"cache_hit\":%b}"
    e.seq (Trace.json_float e.at)
    (Trace.json_string e.ruleset)
    (Trace.json_string e.fingerprint)
    (Trace.json_float e.seconds) (Trace.json_float e.cost) e.groups
    e.budget_hit e.cache_hit

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (entry_to_json e);
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

(* single JSON document for the /tracez endpoint *)
let to_json t =
  let es = entries t in
  Printf.sprintf
    "{\"threshold_s\":%s,\"recorded\":%d,\"entries\":[%s]}"
    (Trace.json_float t.threshold)
    (seq t)
    (String.concat "," (List.map entry_to_json es))
