type reason =
  | Test_failed
  | Pruned of float
  | Budget_exhausted
  | No_input_plan

type event =
  | Group_created of { gid : int }
  | Groups_merged of { survivor : int; dead : int }
  | Trans_matched of { rule : string; gid : int; bindings : int }
  | Trans_applied of { rule : string; gid : int }
  | Trans_rejected of { rule : string; gid : int; reason : reason }
  | Impl_matched of { rule : string; gid : int }
  | Impl_applied of { rule : string; gid : int }
  | Impl_rejected of { rule : string; gid : int; reason : reason }
  | Enforcer_inserted of { alg : string; gid : int }
  | Memo_hit of { gid : int }
  | Winner_changed of {
      gid : int;
      alg : string;
      old_cost : float option;
      new_cost : float;
    }
  | Budget_hit of { groups : int }

type t = {
  buf : event option array;
  mutable n : int;  (* total emitted; the next sequence number *)
  mutex : Mutex.t;
      (* guards [buf] and [n]: a sink may be shared by concurrent emitters
         (the plan service's worker domains, parallel exploration), and an
         unguarded [n] increment would both lose events and let a reader
         observe a slot/counter mismatch *)
}

let create ?(capacity = 65536) () =
  { buf = Array.make (max 1 capacity) None; n = 0; mutex = Mutex.create () }

let capacity t = Array.length t.buf

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let emit t ev =
  with_lock t (fun () ->
      t.buf.(t.n mod Array.length t.buf) <- Some ev;
      t.n <- t.n + 1)

let seq t = with_lock t (fun () -> t.n)

let length_unlocked t = min t.n (Array.length t.buf)
let length t = with_lock t (fun () -> length_unlocked t)
let dropped t = with_lock t (fun () -> t.n - length_unlocked t)

let events t =
  with_lock t (fun () ->
      List.init (length_unlocked t) (fun i ->
          let s = t.n - length_unlocked t + i in
          match t.buf.(s mod Array.length t.buf) with
          | Some ev -> (s, ev)
          | None -> assert false (* slots below [length] are always filled *)))

let clear t =
  with_lock t (fun () ->
      Array.fill t.buf 0 (Array.length t.buf) None;
      t.n <- 0)

let kind = function
  | Group_created _ -> "group_created"
  | Groups_merged _ -> "groups_merged"
  | Trans_matched _ -> "trans_matched"
  | Trans_applied _ -> "trans_applied"
  | Trans_rejected _ -> "trans_rejected"
  | Impl_matched _ -> "impl_matched"
  | Impl_applied _ -> "impl_applied"
  | Impl_rejected _ -> "impl_rejected"
  | Enforcer_inserted _ -> "enforcer_inserted"
  | Memo_hit _ -> "memo_hit"
  | Winner_changed _ -> "winner_changed"
  | Budget_hit _ -> "budget_hit"

let reason_label = function
  | Test_failed -> "test_failed"
  | Pruned _ -> "pruned"
  | Budget_exhausted -> "budget_exhausted"
  | No_input_plan -> "no_input_plan"

(* minimal JSON string escaping: quote, backslash, control characters *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* JSON has no infinity; costs can be infinite before the first winner *)
let json_float f =
  if Float.is_finite f then Printf.sprintf "%.17g" f
  else if f > 0.0 then "\"inf\""
  else "\"-inf\""

let reason_fields = function
  | Test_failed | Budget_exhausted | No_input_plan -> ""
  | Pruned limit -> Printf.sprintf ",\"limit\":%s" (json_float limit)

let event_to_json ~seq ev =
  let tail =
    match ev with
    | Group_created { gid } -> Printf.sprintf "\"gid\":%d" gid
    | Groups_merged { survivor; dead } ->
      Printf.sprintf "\"survivor\":%d,\"dead\":%d" survivor dead
    | Trans_matched { rule; gid; bindings } ->
      Printf.sprintf "\"rule\":%s,\"gid\":%d,\"bindings\":%d"
        (json_string rule) gid bindings
    | Trans_applied { rule; gid } | Impl_applied { rule; gid } ->
      Printf.sprintf "\"rule\":%s,\"gid\":%d" (json_string rule) gid
    | Impl_matched { rule; gid } ->
      Printf.sprintf "\"rule\":%s,\"gid\":%d" (json_string rule) gid
    | Trans_rejected { rule; gid; reason } | Impl_rejected { rule; gid; reason }
      ->
      Printf.sprintf "\"rule\":%s,\"gid\":%d,\"reason\":%s%s"
        (json_string rule) gid
        (json_string (reason_label reason))
        (reason_fields reason)
    | Enforcer_inserted { alg; gid } ->
      Printf.sprintf "\"alg\":%s,\"gid\":%d" (json_string alg) gid
    | Memo_hit { gid } -> Printf.sprintf "\"gid\":%d" gid
    | Winner_changed { gid; alg; old_cost; new_cost } ->
      Printf.sprintf "\"gid\":%d,\"alg\":%s,\"old_cost\":%s,\"new_cost\":%s"
        gid (json_string alg)
        (match old_cost with None -> "null" | Some c -> json_float c)
        (json_float new_cost)
    | Budget_hit { groups } -> Printf.sprintf "\"groups\":%d" groups
  in
  Printf.sprintf "{\"seq\":%d,\"event\":%s,%s}" seq (json_string (kind ev))
    tail

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (seq, ev) ->
      Buffer.add_string buf (event_to_json ~seq ev);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let output_jsonl oc t = output_string oc (to_jsonl t)
