(** Hierarchical timed spans with per-rule attribution.

    A sink is a bounded ring buffer of completed spans plus an exact
    per-(phase, rule) aggregate table that survives ring wrap-around.
    Parents are explicit handles threaded by the caller — there is no
    global mutable "current span", so the discipline stays correct
    when exploration goes multi-domain: give each domain its own sink
    and thread handles within it.

    Sinks are safe to share across domains, like {!Trace}: enter, exit,
    reads and clear all hold the sink's internal mutex, so concurrent
    emitters never lose records, tear counters, or corrupt the aggregate
    table.  A {e handle} tree is still single-domain — only sink state is
    protected; open and close any given span from the same domain.
    Timestamps are wall-clock nanoseconds made strictly monotonic per
    sink (OCaml 5.1 ships no stdlib monotonic clock; readings that do
    not advance are bumped by 1 ns). *)

type phase =
  | Optimize  (** a whole [Search.optimize] / [Bottom_up.optimize] run *)
  | Explore  (** worklist fixpoint over one group *)
  | Match  (** T-rule pattern match against one lexpr *)
  | Apply  (** T-rule condition + template build + memo insertion *)
  | Cost  (** one implementation-rule costing, inputs included *)
  | Enforcer  (** enforcer insertion + relaxed re-optimization *)
  | Memo_insert  (** gtree/expression insertion into the memo *)
  | Serve  (** service-level request handling *)

val phase_label : phase -> string
val all_phases : phase list

type handle
(** An open span. Valid until passed to {!exit}; handles are cheap
    records, never stored by the sink. *)

type record = {
  id : int;
  parent : int;  (** [id] of the parent span, [-1] for roots *)
  phase : phase;
  rule : string option;
  domain : int;  (** integer id of the domain that closed the span *)
  start_ns : int64;
  dur_ns : int64;
  self_ns : int64;  (** [dur_ns] minus the sum of direct children *)
  minor_words : float;
  major_words : float;
}

type agg = {
  a_phase : phase;
  a_rule : string option;
  mutable a_count : int;
  mutable a_total_ns : int64;
  mutable a_self_ns : int64;
  mutable a_minor_words : float;
  mutable a_major_words : float;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the record ring (default 65536); the aggregate
    table is exact regardless of drops. *)

val capacity : t -> int

val enter : t -> ?rule:string -> ?parent:handle -> phase -> handle
val exit : t -> handle -> unit
(** [exit t h] closes [h]: computes duration and GC-word deltas,
    charges the duration to the parent handle's children sum, appends
    a {!record}, and folds into the aggregate table. Call exactly once
    per handle, children strictly before parents. *)

val enter_opt :
  t option -> ?rule:string -> parent:handle option -> phase -> handle option
(** Disabled fast path: a single Option check when the sink is [None].
    [parent] is labelled (not optional) so instrumentation sites are
    forced to thread it explicitly. *)

val exit_opt : t option -> handle option -> unit

val seq : t -> int
(** Total spans completed, including dropped ones. *)

val length : t -> int
val dropped : t -> int

val records : t -> record list
(** Retained records, oldest first (completion order). *)

val clear : t -> unit

val root_total_ns : t -> int64
(** Summed duration of parentless spans — the profiled wall total. *)

val root_count : t -> int

val profile : t -> agg list
(** Exact per-(phase, rule) aggregates, sorted by self time
    descending. *)

val to_chrome : t -> string
(** Chrome trace-event JSON ("X" complete events, µs timestamps
    rebased to the earliest retained span); opens in Perfetto and
    chrome://tracing. *)

val chrome_of_trace : Trace.t -> string
(** Render an event trace as trace-event JSON instant events (seq as
    the µs clock, full event objects under [args]). *)
