(** A named registry of counters, gauges and log-bucketed histograms.

    Service-level telemetry for the plan service and the optimizers:
    instruments are registered by (name, labels) — registering the same
    pair twice returns the same instrument, so call sites can look their
    instrument up on every request without caring who created it.  Label
    sets make per-ruleset / per-rule / per-worker breakdowns cheap.

    All mutation goes through the registry's mutex, so instruments can be
    updated from every domain of the plan service's pool.

    Two exporters: {!to_prometheus} (Prometheus text exposition format,
    with proper label-value and help escaping) and {!to_jsonl} (one JSON
    object per instrument per line). *)

type t
(** The registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Register (or look up) a monotonic counter.
    @raise Invalid_argument if [name] is already registered with a
    different instrument kind. *)

val inc : ?by:int -> counter -> unit
(** Add [by] (default 1; must be [>= 0]). *)

val counter_value : counter -> int

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val log_buckets : ?start:float -> ?factor:float -> ?count:int -> unit -> float list
(** Exponential bucket upper bounds [start *. factor^i] for
    [i = 0 .. count-1].  Defaults — [start:1e-5] (10µs), [factor:2.],
    [count:20] (~5.2s) — cover optimizer latencies.  The implicit [+Inf]
    bucket is always added by {!histogram}. *)

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float list ->
  string ->
  histogram
(** Register (or look up) a histogram with the given finite bucket upper
    bounds (default {!log_buckets}[ ()]; sorted, deduplicated; a [+Inf]
    bucket is appended).  An observation [v] lands in every bucket with
    [v <= upper_bound] (cumulative, Prometheus-style). *)

val observe : histogram -> float -> unit

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val buckets : histogram -> (float * int) list
(** (upper bound, cumulative count) pairs, including the final
    [(infinity, count)]. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0. <= q <= 1.]) by
    linear interpolation inside the first cumulative bucket reaching
    [q * count], assuming non-negative observations (the first
    bucket's lower edge is 0).  Values past the largest finite bound
    degrade to that bound; [nan] when the histogram is empty.
    @raise Invalid_argument if [q] is outside [0., 1.]. *)

val summary_quantiles : (string * float) list
(** The quantile summaries both exporters emit:
    [("p50", 0.5); ("p90", 0.9); ("p99", 0.99)]. *)

val to_prometheus : t -> string
(** Prometheus text exposition format: [# HELP] / [# TYPE] per metric
    name, label values escaped (backslash, double quote, newline),
    histograms expanded into [_bucket{le=...}] / [_sum] / [_count]
    series.  Non-empty histograms additionally export
    {!summary_quantiles} as derived gauges ([<name>_p50], [<name>_p90],
    [<name>_p99]) after the primary series. *)

val to_jsonl : t -> string
(** One JSON object per instrument per line, carrying its name, type,
    labels and current value (histograms: count, sum, [p50]/[p90]/[p99]
    estimates — [null] when empty — and cumulative buckets). *)

val output : out_channel -> [ `Prometheus | `Jsonl ] -> t -> unit
