type hist_state = {
  bounds : float array;  (* sorted, strictly increasing, finite *)
  counts : int array;  (* per-bucket (non-cumulative); length bounds + 1 *)
  mutable sum : float;
  mutable count : int;
}

type kind =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of hist_state

type instrument = {
  name : string;
  help : string;
  labels : (string * string) list;
  kind : kind;
  lock : Mutex.t;  (* the owning registry's mutex *)
}

type t = {
  mutex : Mutex.t;
  mutable instruments : instrument list;  (* registration order, reversed *)
}

type counter = instrument
type gauge = instrument
type histogram = instrument

let create () = { mutex = Mutex.create (); instruments = [] }

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let same_kind a b =
  match (a, b) with
  | Counter _, Counter _ | Gauge _, Gauge _ | Histogram _, Histogram _ -> true
  | _ -> false

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let register t ~help ~labels name fresh =
  let labels = norm_labels labels in
  locked t.mutex (fun () ->
      let existing =
        List.find_opt
          (fun i -> String.equal i.name name && i.labels = labels)
          t.instruments
      in
      match existing with
      | Some i ->
        let k = fresh () in
        if not (same_kind i.kind k) then
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name i.kind));
        i
      | None ->
        (match
           List.find_opt (fun i -> String.equal i.name name) t.instruments
         with
        | Some i when not (same_kind i.kind (fresh ())) ->
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name i.kind))
        | _ -> ());
        let i = { name; help; labels; kind = fresh (); lock = t.mutex } in
        t.instruments <- i :: t.instruments;
        i)

let counter t ?(help = "") ?(labels = []) name =
  register t ~help ~labels name (fun () -> Counter (ref 0))

let inc ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.inc: negative increment";
  match c.kind with
  | Counter r -> locked c.lock (fun () -> r := !r + by)
  | _ -> assert false

let counter_value c =
  match c.kind with
  | Counter r -> locked c.lock (fun () -> !r)
  | _ -> assert false

let gauge t ?(help = "") ?(labels = []) name =
  register t ~help ~labels name (fun () -> Gauge (ref 0.0))

let set g v =
  match g.kind with
  | Gauge r -> locked g.lock (fun () -> r := v)
  | _ -> assert false

let gauge_value g =
  match g.kind with
  | Gauge r -> locked g.lock (fun () -> !r)
  | _ -> assert false

let log_buckets ?(start = 1e-5) ?(factor = 2.0) ?(count = 20) () =
  if start <= 0.0 || factor <= 1.0 || count < 1 then
    invalid_arg "Metrics.log_buckets";
  List.init count (fun i -> start *. (factor ** float_of_int i))

let histogram t ?(help = "") ?(labels = []) ?buckets name =
  let bounds =
    let bs = match buckets with Some bs -> bs | None -> log_buckets () in
    bs
    |> List.filter Float.is_finite
    |> List.sort_uniq Float.compare
    |> Array.of_list
  in
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: no buckets";
  register t ~help ~labels name (fun () ->
      Histogram
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          sum = 0.0;
          count = 0;
        })

(* index of the first bucket with [v <= bound]; the overflow bucket else *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go lo hi =
    (* invariant: every bound below [lo] is < v; v <= every bound >= [hi] *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  match h.kind with
  | Histogram s ->
    locked h.lock (fun () ->
        let i = bucket_index s.bounds v in
        s.counts.(i) <- s.counts.(i) + 1;
        s.sum <- s.sum +. v;
        s.count <- s.count + 1)
  | _ -> assert false

let histogram_count h =
  match h.kind with
  | Histogram s -> locked h.lock (fun () -> s.count)
  | _ -> assert false

let histogram_sum h =
  match h.kind with
  | Histogram s -> locked h.lock (fun () -> s.sum)
  | _ -> assert false

(* Estimate the q-quantile by linear interpolation inside the first
   cumulative bucket reaching q*count. Observations are assumed
   non-negative (latencies/sizes), so the first bucket's lower edge is
   0; the overflow bucket has no upper edge and degrades to the
   largest finite bound. nan when empty. *)
let quantile h q =
  if not (Float.is_finite q) || q < 0.0 || q > 1.0 then
    invalid_arg "Metrics.quantile";
  match h.kind with
  | Histogram s ->
    locked h.lock (fun () ->
        if s.count = 0 then nan
        else begin
          let target = q *. float_of_int s.count in
          let n = Array.length s.bounds in
          let rec go i cum lower =
            if i >= n then s.bounds.(n - 1)
            else
              let cum' = cum + s.counts.(i) in
              if float_of_int cum' >= target && s.counts.(i) > 0 then
                let frac =
                  (target -. float_of_int cum) /. float_of_int s.counts.(i)
                in
                lower +. ((s.bounds.(i) -. lower) *. Float.max 0.0 (Float.min 1.0 frac))
              else go (i + 1) cum' s.bounds.(i)
          in
          go 0 0 0.0
        end)
  | _ -> assert false

let summary_quantiles = [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

let buckets h =
  match h.kind with
  | Histogram s ->
    locked h.lock (fun () ->
        let acc = ref 0 in
        let finite =
          Array.to_list
            (Array.mapi
               (fun i ub ->
                 acc := !acc + s.counts.(i);
                 (ub, !acc))
               s.bounds)
        in
        finite @ [ (infinity, s.count) ])
  | _ -> assert false

(* ---------------- exporters ---------------- *)

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let fmt_bound ub = if Float.is_finite ub then fmt_float ub else "+Inf"

let label_block labels =
  match labels with
  | [] -> ""
  | ls ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           ls)
    ^ "}"

(* instruments in registration order, grouped by metric name (a name's
   HELP/TYPE header is printed once, before its first series) *)
let ordered t = locked t.mutex (fun () -> List.rev t.instruments)

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun i ->
      if not (Hashtbl.mem seen_header i.name) then begin
        Hashtbl.replace seen_header i.name ();
        if i.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" i.name (escape_help i.help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" i.name (kind_name i.kind))
      end;
      match i.kind with
      | Counter r ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" i.name (label_block i.labels)
             (locked i.lock (fun () -> !r)))
      | Gauge r ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" i.name (label_block i.labels)
             (fmt_float (locked i.lock (fun () -> !r))))
      | Histogram _ ->
        let bs = buckets i and sum = histogram_sum i in
        let count = histogram_count i in
        List.iter
          (fun (ub, c) ->
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" i.name
                 (label_block (i.labels @ [ ("le", fmt_bound ub) ]))
                 c))
          bs;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" i.name (label_block i.labels)
             (fmt_float sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" i.name (label_block i.labels)
             count))
    (ordered t);
  (* quantile summaries as derived gauges, emitted after the primary
     series so each derived family stays grouped (suffix-major order) *)
  let hists =
    List.filter
      (fun i -> match i.kind with Histogram _ -> true | _ -> false)
      (ordered t)
  in
  List.iter
    (fun (suffix, q) ->
      List.iter
        (fun i ->
          if histogram_count i > 0 then begin
            let name = i.name ^ "_" ^ suffix in
            if not (Hashtbl.mem seen_header name) then begin
              Hashtbl.replace seen_header name ();
              Buffer.add_string buf
                (Printf.sprintf "# HELP %s %s quantile of %s\n" name suffix
                   i.name);
              Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name)
            end;
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" name (label_block i.labels)
                 (fmt_float (quantile i q)))
          end)
        hists)
    summary_quantiles;
  Buffer.contents buf

let json_string = Trace.json_string

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) (json_string v))
         labels)
  ^ "}"

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun i ->
      let line =
        match i.kind with
        | Counter r ->
          Printf.sprintf "{\"name\":%s,\"type\":\"counter\",\"labels\":%s,\"value\":%d}"
            (json_string i.name) (json_labels i.labels)
            (locked i.lock (fun () -> !r))
        | Gauge r ->
          Printf.sprintf "{\"name\":%s,\"type\":\"gauge\",\"labels\":%s,\"value\":%s}"
            (json_string i.name) (json_labels i.labels)
            (Trace.json_float (locked i.lock (fun () -> !r)))
        | Histogram _ ->
          let bs = buckets i in
          let qfields =
            String.concat ""
              (List.map
                 (fun (suffix, q) ->
                   let v = quantile i q in
                   Printf.sprintf ",\"%s\":%s" suffix
                     (if Float.is_nan v then "null" else Trace.json_float v))
                 summary_quantiles)
          in
          Printf.sprintf
            "{\"name\":%s,\"type\":\"histogram\",\"labels\":%s,\"count\":%d,\"sum\":%s%s,\"buckets\":[%s]}"
            (json_string i.name) (json_labels i.labels) (histogram_count i)
            (Trace.json_float (histogram_sum i))
            qfields
            (String.concat ","
               (List.map
                  (fun (ub, c) ->
                    Printf.sprintf "{\"le\":%s,\"count\":%d}"
                      (if Float.is_finite ub then Trace.json_float ub
                       else "\"+Inf\"")
                      c)
                  bs))
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (ordered t);
  Buffer.contents buf

let output oc fmt t =
  output_string oc
    (match fmt with `Prometheus -> to_prometheus t | `Jsonl -> to_jsonl t)
