(** Threshold-based slow-query log.

    A mutex-protected bounded ring of the most recent searches whose
    wall time met the threshold — shared safely across serve worker
    domains, rendered as JSONL for files and as a single JSON document
    for the telemetry [/tracez] endpoint. *)

type entry = {
  seq : int;
  at : float;  (** [Unix.gettimeofday] at completion *)
  ruleset : string;
  fingerprint : string;  (** canonical query fingerprint *)
  seconds : float;
  cost : float;
  groups : int;
  budget_hit : bool;
  cache_hit : bool;
}

type t

val create : ?capacity:int -> ?threshold:float -> unit -> t
(** [capacity] bounds retained entries (default 256); [threshold] is
    in seconds (default 0.1). Raises [Invalid_argument] on a negative
    threshold. *)

val threshold : t -> float
val capacity : t -> int

val observe :
  t ->
  ruleset:string ->
  fingerprint:string ->
  seconds:float ->
  cost:float ->
  groups:int ->
  budget_hit:bool ->
  cache_hit:bool ->
  unit
(** Records the search iff [seconds >= threshold t]. Thread-safe. *)

val seq : t -> int
(** Total entries recorded, including dropped ones. *)

val length : t -> int
val dropped : t -> int

val entries : t -> entry list
(** Retained entries, oldest first. *)

val entry_to_json : entry -> string
val to_jsonl : t -> string
val to_json : t -> string
