(** Structured search-event traces.

    A {!t} is a bounded ring buffer of search events with a monotonic
    per-sink sequence number (no wall-clock reads on the hot path: event
    order is what matters for explaining a search, and a counter is free).
    When the buffer is full the oldest events are dropped and counted, so
    a sink can be left attached to an arbitrarily long search with bounded
    memory.

    The event vocabulary mirrors the Volcano engine: groups appearing and
    merging in the memo, transformation/implementation rules being
    matched, applied, or rejected {e with a reason}, enforcer insertions,
    memo hits, and winner changes with the old and new cost — enough to
    answer "why was this plan chosen" and "why did rule X never fire"
    (see [Explain.trace] in [prairie_volcano]).

    A sink is safe to share across domains: every operation (emit, reads,
    clear) holds the sink's internal mutex, so concurrent emitters never
    lose events or tear the sequence counter, and [events] always returns
    a consistent snapshot.  The plan service still prefers one sink per
    worker — sharing is for the parallel search and ad-hoc telemetry, not
    a throughput feature. *)

(** Why a matched rule did not produce a plan. *)
type reason =
  | Test_failed  (** the rule's condition code rejected the binding *)
  | Pruned of float
      (** branch-and-bound: the remaining cost limit (annotation) made the
          alternative not worth completing *)
  | Budget_exhausted  (** the group budget capped exploration *)
  | No_input_plan
      (** an input group has no plan under the requested properties
          (with pruning off, i.e. not a cost-limit artifact) *)

type event =
  | Group_created of { gid : int }
  | Groups_merged of { survivor : int; dead : int }
  | Trans_matched of { rule : string; gid : int; bindings : int }
  | Trans_applied of { rule : string; gid : int }
  | Trans_rejected of { rule : string; gid : int; reason : reason }
  | Impl_matched of { rule : string; gid : int }
  | Impl_applied of { rule : string; gid : int }
  | Impl_rejected of { rule : string; gid : int; reason : reason }
  | Enforcer_inserted of { alg : string; gid : int }
  | Memo_hit of { gid : int }
  | Winner_changed of {
      gid : int;
      alg : string;
      old_cost : float option;  (** [None]: first winner for the group *)
      new_cost : float;
    }
  | Budget_hit of { groups : int }
      (** emitted once, when exploration first hits the group budget *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh sink retaining at most [capacity] (default 65536, min 1)
    events. *)

val capacity : t -> int

val emit : t -> event -> unit
(** Record one event, assigning it the next sequence number; drops the
    oldest retained event when full. *)

val seq : t -> int
(** Total events emitted over the sink's lifetime (= the next event's
    sequence number). *)

val length : t -> int
(** Events currently retained: [min (seq t) (capacity t)]. *)

val dropped : t -> int
(** Events lost to the ring buffer bound: [seq t - length t]. *)

val events : t -> (int * event) list
(** Retained events, oldest first, paired with their sequence number.
    Sequence numbers are contiguous: [dropped t] up to [seq t - 1]. *)

val clear : t -> unit
(** Forget all retained events and counters. *)

val kind : event -> string
(** Stable lowercase tag, e.g. ["trans_applied"] — the ["event"] field of
    the JSON encoding. *)

val reason_label : reason -> string
(** ["test_failed"], ["pruned"], ["budget_exhausted"], ["no_input_plan"]. *)

val event_to_json : seq:int -> event -> string
(** One event as a single-line JSON object:
    [{"seq":12,"event":"trans_applied","rule":"join-assoc","gid":3}]. *)

val to_jsonl : t -> string
(** Retained events as JSON lines (newline after every event). *)

val output_jsonl : out_channel -> t -> unit

(** {1 JSON helpers} (shared with [Metrics]) *)

val json_string : string -> string
(** Quote and escape per RFC 8259. *)

val json_float : float -> string
(** Finite floats as shortest round-trip decimal; infinities as the JSON
    strings ["inf"] / ["-inf"]. *)
