(* Hierarchical timed spans with per-rule attribution.

   A sink records completed spans into a bounded ring buffer (oldest
   dropped first, like [Trace]) and simultaneously folds every exit
   into an exact per-(phase, rule) aggregate table, so profiles stay
   accurate even when the ring wraps.  Parents are explicit handles
   threaded by the caller — there is no global (or domain-local)
   "current span" variable, so the discipline survives multi-domain
   exploration.  Sink state is mutex-protected so concurrent emitters
   may share one sink; handle trees remain single-domain.

   Timestamps come from [Unix.gettimeofday] (OCaml 5.1 ships no
   monotonic clock in the stdlib and Mtime is not vendored) made
   strictly monotonic per sink by clamping: a reading that does not
   advance past the previous one is bumped by 1 ns.  Within one sink
   this guarantees start < child start < child end < end for properly
   nested spans. *)

type phase =
  | Optimize
  | Explore
  | Match
  | Apply
  | Cost
  | Enforcer
  | Memo_insert
  | Serve

let phase_label = function
  | Optimize -> "optimize"
  | Explore -> "explore"
  | Match -> "match"
  | Apply -> "apply"
  | Cost -> "cost"
  | Enforcer -> "enforcer"
  | Memo_insert -> "memo_insert"
  | Serve -> "serve"

let all_phases =
  [ Optimize; Explore; Match; Apply; Cost; Enforcer; Memo_insert; Serve ]

type handle = {
  h_id : int;
  h_parent : handle option;
  h_phase : phase;
  h_rule : string option;
  h_start : int64;
  h_minor0 : float;
  h_major0 : float;
  mutable h_children_ns : int64;  (* sum of direct children durations *)
}

type record = {
  id : int;
  parent : int;  (* -1 for roots *)
  phase : phase;
  rule : string option;
  domain : int;
  start_ns : int64;
  dur_ns : int64;
  self_ns : int64;  (* dur minus direct children *)
  minor_words : float;
  major_words : float;
}

type agg = {
  a_phase : phase;
  a_rule : string option;
  mutable a_count : int;
  mutable a_total_ns : int64;
  mutable a_self_ns : int64;
  mutable a_minor_words : float;
  mutable a_major_words : float;
}

type t = {
  buf : record option array;
  mutable n : int;  (* total completed; next record index *)
  mutable next_id : int;
  mutable last_ns : int64;  (* monotonic clamp state *)
  mutable root_total_ns : int64;
  mutable root_count : int;
  agg : (string, agg) Hashtbl.t;  (* keyed by phase_label ^ "/" ^ rule *)
  mutex : Mutex.t;
      (* guards every field above: a sink may be shared by concurrent
         emitters (service worker domains, parallel search), and the agg
         table in particular corrupts under unsynchronized writes.  Handle
         trees stay single-domain — only sink state is protected. *)
}

let create ?(capacity = 65536) () =
  {
    buf = Array.make (max 1 capacity) None;
    n = 0;
    next_id = 0;
    last_ns = 0L;
    root_total_ns = 0L;
    root_count = 0;
    agg = Hashtbl.create 64;
    mutex = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let capacity t = Array.length t.buf
let seq t = with_lock t (fun () -> t.n)
let length_unlocked t = min t.n (Array.length t.buf)
let length t = with_lock t (fun () -> length_unlocked t)
let dropped t = with_lock t (fun () -> t.n - length_unlocked t)
let root_total_ns t = with_lock t (fun () -> t.root_total_ns)
let root_count t = with_lock t (fun () -> t.root_count)

(* strictly increasing per sink: gettimeofday has µs resolution, so
   back-to-back readings tie frequently; ties advance by 1 ns *)
let now_ns t =
  let raw = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let ns =
    if Int64.compare raw t.last_ns > 0 then raw else Int64.add t.last_ns 1L
  in
  t.last_ns <- ns;
  ns

let enter t ?rule ?parent phase =
  let id, start =
    with_lock t (fun () ->
        let id = t.next_id in
        t.next_id <- id + 1;
        (id, now_ns t))
  in
  let minor, _promoted, major = Gc.counters () in
  {
    h_id = id;
    h_parent = parent;
    h_phase = phase;
    h_rule = rule;
    h_start = start;
    h_minor0 = minor;
    h_major0 = major;
    h_children_ns = 0L;
  }

let agg_key phase rule =
  match rule with
  | None -> phase_label phase
  | Some r -> phase_label phase ^ "/" ^ r

let exit t h =
  let minor, _promoted, major = Gc.counters () in
  let minor_w = minor -. h.h_minor0 and major_w = major -. h.h_major0 in
  with_lock t @@ fun () ->
  let stop = now_ns t in
  let dur = Int64.sub stop h.h_start in
  let self = Int64.sub dur h.h_children_ns in
  (match h.h_parent with
  | Some p -> p.h_children_ns <- Int64.add p.h_children_ns dur
  | None ->
    t.root_total_ns <- Int64.add t.root_total_ns dur;
    t.root_count <- t.root_count + 1);
  let r =
    {
      id = h.h_id;
      parent = (match h.h_parent with Some p -> p.h_id | None -> -1);
      phase = h.h_phase;
      rule = h.h_rule;
      domain = (Domain.self () :> int);
      start_ns = h.h_start;
      dur_ns = dur;
      self_ns = self;
      minor_words = minor_w;
      major_words = major_w;
    }
  in
  t.buf.(t.n mod Array.length t.buf) <- Some r;
  t.n <- t.n + 1;
  let key = agg_key h.h_phase h.h_rule in
  match Hashtbl.find_opt t.agg key with
  | Some a ->
    a.a_count <- a.a_count + 1;
    a.a_total_ns <- Int64.add a.a_total_ns dur;
    a.a_self_ns <- Int64.add a.a_self_ns self;
    a.a_minor_words <- a.a_minor_words +. minor_w;
    a.a_major_words <- a.a_major_words +. major_w
  | None ->
    Hashtbl.replace t.agg key
      {
        a_phase = h.h_phase;
        a_rule = h.h_rule;
        a_count = 1;
        a_total_ns = dur;
        a_self_ns = self;
        a_minor_words = minor_w;
        a_major_words = major_w;
      }

(* disabled fast path: one Option check, nothing allocated *)
let enter_opt t ?rule ~parent phase =
  match t with
  | None -> None
  | Some sink -> Some (enter sink ?rule ?parent phase)

let exit_opt t h =
  match (t, h) with
  | Some sink, Some h -> exit sink h
  | _ -> ()

let records t =
  with_lock t (fun () ->
      List.init (length_unlocked t) (fun i ->
          let s = t.n - length_unlocked t + i in
          match t.buf.(s mod Array.length t.buf) with
          | Some r -> r
          | None -> assert false (* slots below [length] are always filled *)))

let clear t =
  with_lock t @@ fun () ->
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.n <- 0;
  t.next_id <- 0;
  t.root_total_ns <- 0L;
  t.root_count <- 0;
  Hashtbl.reset t.agg

(* copy the aggregates out under the lock so a concurrent [exit] cannot
   mutate a cell mid-sort or mid-render *)
let profile t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun _ a acc -> { a with a_count = a.a_count } :: acc)
        t.agg [])
  |> List.sort (fun a b ->
         match Int64.compare b.a_self_ns a.a_self_ns with
         | 0 -> compare (agg_key a.a_phase a.a_rule) (agg_key b.a_phase b.a_rule)
         | c -> c)

(* ---------------- Chrome trace-event exporter ---------------- *)

(* https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
   "X" complete events, ts/dur in microseconds; opens in Perfetto and
   chrome://tracing. ts is rebased so the earliest retained span is 0. *)

let us_of_ns ns = Int64.to_float ns /. 1e3

let chrome_event buf ~base r =
  let name =
    match r.rule with
    | None -> phase_label r.phase
    | Some rule -> phase_label r.phase ^ ":" ^ rule
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"id\":%d,\"parent\":%d,\"self_us\":%s,\"minor_words\":%s,\"major_words\":%s%s}}"
       (Trace.json_string name)
       (Trace.json_string (phase_label r.phase))
       (Trace.json_float (us_of_ns (Int64.sub r.start_ns base)))
       (Trace.json_float (us_of_ns r.dur_ns))
       r.domain r.id r.parent
       (Trace.json_float (us_of_ns r.self_ns))
       (Trace.json_float r.minor_words)
       (Trace.json_float r.major_words)
       (match r.rule with
       | None -> ""
       | Some rule -> Printf.sprintf ",\"rule\":%s" (Trace.json_string rule)))

let to_chrome t =
  let rs = records t in
  let base =
    List.fold_left
      (fun acc r -> if Int64.compare r.start_ns acc < 0 then r.start_ns else acc)
      (match rs with [] -> 0L | r :: _ -> r.start_ns)
      rs
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"prairie\"}}";
  List.iter
    (fun r ->
      Buffer.add_char buf ',';
      chrome_event buf ~base r)
    rs;
  Buffer.add_string buf
    (Printf.sprintf "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"spans\":%d,\"dropped\":%d}}"
       (seq t) (dropped t));
  Buffer.contents buf

(* Event traces have no durations; render them as thread-scoped instant
   events one microsecond apart (seq as the clock), args carrying the
   full JSONL object so nothing is lost. *)
let chrome_of_trace tr =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"prairie-trace\"}}";
  List.iter
    (fun (s, ev) ->
      Buffer.add_string buf
        (Printf.sprintf
           ",{\"name\":%s,\"cat\":\"trace\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":1,\"tid\":0,\"args\":{\"event\":%s}}"
           (Trace.json_string (Trace.kind ev))
           s
           (Trace.event_to_json ~seq:s ev)))
    (Trace.events tr);
  Buffer.add_string buf
    (Printf.sprintf "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"events\":%d,\"dropped\":%d}}"
       (Trace.seq tr) (Trace.dropped tr));
  Buffer.contents buf
