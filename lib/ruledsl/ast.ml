(* Surface syntax tree of a rule-specification file.  Patterns, templates,
   statements and expressions reuse the Prairie core types directly — the
   surface language is a concrete syntax for them.  Every declaration
   carries the source position of its introducing keyword so that
   diagnostics (elaboration errors, lint findings) can point at
   line/column. *)

type loc = Lexer.position

let no_loc : loc = { Lexer.line = 0; column = 0 }

type rule_body = {
  rb_name : string;
  rb_loc : loc;
  rb_lhs : Prairie.Pattern.t;
  rb_rhs : Prairie.Pattern.tmpl;
  rb_pre : Prairie.Action.stmt list;
  rb_test : Prairie.Action.expr;
  rb_post : Prairie.Action.stmt list;
}

type decl =
  | Dproperty of string * string * loc  (* name, type name *)
  | Doperator of string * int * loc  (* name, arity *)
  | Dalgorithm of string * int * loc
  | Dtrule of rule_body
  | Dirule of rule_body

type spec = {
  ruleset_name : string;
  decls : decl list;
}

let decl_loc = function
  | Dproperty (_, _, l) | Doperator (_, _, l) | Dalgorithm (_, _, l) -> l
  | Dtrule r | Dirule r -> r.rb_loc

let properties spec =
  List.filter_map
    (function Dproperty (n, ty, _) -> Some (n, ty) | _ -> None)
    spec.decls

let properties_located spec =
  List.filter_map
    (function Dproperty (n, ty, l) -> Some (n, ty, l) | _ -> None)
    spec.decls

let operators spec =
  List.filter_map (function Doperator (n, a, _) -> Some (n, a) | _ -> None) spec.decls

let operators_located spec =
  List.filter_map
    (function Doperator (n, a, l) -> Some (n, a, l) | _ -> None)
    spec.decls

let algorithms spec =
  List.filter_map
    (function Dalgorithm (n, a, _) -> Some (n, a) | _ -> None)
    spec.decls

let algorithms_located spec =
  List.filter_map
    (function Dalgorithm (n, a, l) -> Some (n, a, l) | _ -> None)
    spec.decls

let trules spec =
  List.filter_map (function Dtrule r -> Some r | _ -> None) spec.decls

let irules spec =
  List.filter_map (function Dirule r -> Some r | _ -> None) spec.decls

let rules spec =
  List.filter_map
    (function
      | Dtrule r -> Some (`Trule, r)
      | Dirule r -> Some (`Irule, r)
      | Dproperty _ | Doperator _ | Dalgorithm _ -> None)
    spec.decls
