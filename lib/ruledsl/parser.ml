module Pattern = Prairie.Pattern
module Action = Prairie.Action
module Value = Prairie_value.Value
module Order = Prairie_value.Order

exception Parse_error of Lexer.position * string

type state = {
  mutable tokens : Lexer.spanned list;
}

let current st =
  match st.tokens with
  | [] -> { Lexer.token = Token.EOF; pos = { Lexer.line = 0; column = 0 } }
  | t :: _ -> t

let error st msg = raise (Parse_error ((current st).Lexer.pos, msg))
let peek st = (current st).Lexer.token

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st token =
  if peek st = token then advance st
  else
    error st
      (Printf.sprintf "expected %s, found %s" (Token.to_string token)
         (Token.to_string (peek st)))

let ident st =
  match peek st with
  | Token.IDENT name ->
    advance st;
    name
  | t -> error st (Printf.sprintf "expected an identifier, found %s" (Token.to_string t))

let int_lit st =
  match peek st with
  | Token.INT i ->
    advance st;
    i
  | t -> error st (Printf.sprintf "expected an integer, found %s" (Token.to_string t))

(* ---------------- expressions ---------------- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = Token.OR then begin
    advance st;
    Action.Binop (Action.Or, lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if peek st = Token.AND then begin
    advance st;
    Action.Binop (Action.And, lhs, parse_and st)
  end
  else lhs

and parse_cmp st =
  let lhs = parse_add st in
  let cmp c =
    advance st;
    Action.Binop (Action.Cmp c, lhs, parse_add st)
  in
  match peek st with
  | Token.EQ -> cmp Prairie_value.Predicate.Eq
  | Token.NEQ -> cmp Prairie_value.Predicate.Ne
  | Token.LT -> cmp Prairie_value.Predicate.Lt
  | Token.LE -> cmp Prairie_value.Predicate.Le
  | Token.GT -> cmp Prairie_value.Predicate.Gt
  | Token.GE -> cmp Prairie_value.Predicate.Ge
  | _ -> lhs

and parse_add st =
  let lhs = parse_mul st in
  let rec go lhs =
    match peek st with
    | Token.PLUS ->
      advance st;
      go (Action.Binop (Action.Add, lhs, parse_mul st))
    | Token.MINUS ->
      advance st;
      go (Action.Binop (Action.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go lhs

and parse_mul st =
  let lhs = parse_unary st in
  let rec go lhs =
    match peek st with
    | Token.STAR ->
      advance st;
      go (Action.Binop (Action.Mul, lhs, parse_unary st))
    | Token.SLASH ->
      advance st;
      go (Action.Binop (Action.Div, lhs, parse_unary st))
    | _ -> lhs
  in
  go lhs

and parse_unary st =
  match peek st with
  | Token.BANG ->
    advance st;
    Action.Unop (Action.Not, parse_unary st)
  | Token.MINUS ->
    advance st;
    Action.Unop (Action.Neg, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Token.INT i ->
    advance st;
    Action.Const (Value.Int i)
  | Token.FLOAT f ->
    advance st;
    Action.Const (Value.Float f)
  | Token.STRING s ->
    advance st;
    Action.Const (Value.Str s)
  | Token.KW_TRUE ->
    advance st;
    Action.Const (Value.Bool true)
  | Token.KW_FALSE ->
    advance st;
    Action.Const (Value.Bool false)
  | Token.KW_DONT_CARE ->
    advance st;
    Action.Const (Value.Order Order.Any)
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | Token.IDENT name -> (
    advance st;
    match peek st with
    | Token.LPAREN ->
      advance st;
      let args =
        if peek st = Token.RPAREN then []
        else
          let rec go acc =
            let acc = parse_expr st :: acc in
            if peek st = Token.COMMA then begin
              advance st;
              go acc
            end
            else List.rev acc
          in
          go []
      in
      expect st Token.RPAREN;
      Action.Call (name, args)
    | Token.DOT ->
      advance st;
      Action.Prop (name, ident st)
    | _ -> Action.Desc name)
  | t -> error st (Printf.sprintf "expected an expression, found %s" (Token.to_string t))

(* ---------------- statements ---------------- *)

let parse_stmt st =
  let d = ident st in
  let target =
    match peek st with
    | Token.DOT ->
      advance st;
      `Prop (d, ident st)
    | _ -> `Desc d
  in
  expect st Token.ASSIGN;
  let e = parse_expr st in
  expect st Token.SEMI;
  match target with
  | `Desc d -> Action.Assign_desc (d, e)
  | `Prop (d, p) -> Action.Assign_prop (d, p, e)

let parse_stmts st =
  expect st Token.LBRACE;
  let rec go acc =
    if peek st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

(* ---------------- patterns and templates ---------------- *)

let rec parse_pattern st =
  let name = ident st in
  expect st Token.LPAREN;
  let rec args acc =
    let acc = parse_pat st :: acc in
    if peek st = Token.COMMA then begin
      advance st;
      args acc
    end
    else List.rev acc
  in
  let subs = args [] in
  expect st Token.RPAREN;
  expect st Token.COLON;
  let dvar = ident st in
  Pattern.Pop (name, dvar, subs)

and parse_pat st =
  match peek st with
  | Token.STREAM_VAR i ->
    advance st;
    Pattern.Pvar i
  | _ -> parse_pattern st

let rec parse_template st =
  let name = ident st in
  expect st Token.LPAREN;
  let rec args acc =
    let acc = parse_tmpl st :: acc in
    if peek st = Token.COMMA then begin
      advance st;
      args acc
    end
    else List.rev acc
  in
  let subs = args [] in
  expect st Token.RPAREN;
  expect st Token.COLON;
  let dvar = ident st in
  Pattern.Tnode (name, dvar, subs)

and parse_tmpl st =
  match peek st with
  | Token.STREAM_VAR i -> (
    advance st;
    match peek st with
    | Token.COLON ->
      advance st;
      Pattern.Tvar (i, Some (ident st))
    | _ -> Pattern.Tvar (i, None))
  | _ -> parse_template st

(* ---------------- declarations ---------------- *)

let parse_rule_body st ~loc name =
  let lhs = parse_pattern st in
  expect st Token.ARROW;
  let rhs = parse_template st in
  let pre = ref [] and test = ref Action.tt and post = ref [] in
  let rec sections () =
    match peek st with
    | Token.KW_PRE ->
      advance st;
      pre := parse_stmts st;
      sections ()
    | Token.KW_TEST ->
      advance st;
      expect st Token.LBRACE;
      test := parse_expr st;
      expect st Token.RBRACE;
      sections ()
    | Token.KW_POST ->
      advance st;
      post := parse_stmts st;
      sections ()
    | _ -> ()
  in
  sections ();
  {
    Ast.rb_name = name;
    rb_loc = loc;
    rb_lhs = lhs;
    rb_rhs = rhs;
    rb_pre = !pre;
    rb_test = !test;
    rb_post = !post;
  }

let parse_decl st =
  let loc = (current st).Lexer.pos in
  match peek st with
  | Token.KW_PROPERTY ->
    advance st;
    let name = ident st in
    expect st Token.COLON;
    let ty = ident st in
    expect st Token.SEMI;
    Some (Ast.Dproperty (name, ty, loc))
  | Token.KW_OPERATOR ->
    advance st;
    let name = ident st in
    expect st Token.LPAREN;
    let arity = int_lit st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    Some (Ast.Doperator (name, arity, loc))
  | Token.KW_ALGORITHM ->
    advance st;
    let name = ident st in
    expect st Token.LPAREN;
    let arity = int_lit st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    Some (Ast.Dalgorithm (name, arity, loc))
  | Token.KW_TRULE ->
    advance st;
    let name = ident st in
    expect st Token.COLON;
    Some (Ast.Dtrule (parse_rule_body st ~loc name))
  | Token.KW_IRULE ->
    advance st;
    let name = ident st in
    expect st Token.COLON;
    Some (Ast.Dirule (parse_rule_body st ~loc name))
  | Token.EOF -> None
  | t ->
    error st
      (Printf.sprintf "expected a declaration, found %s" (Token.to_string t))

let parse src =
  let st = { tokens = Lexer.tokenize src } in
  expect st Token.KW_RULESET;
  let ruleset_name = ident st in
  expect st Token.SEMI;
  let rec go acc =
    match parse_decl st with
    | Some d -> go (d :: acc)
    | None -> List.rev acc
  in
  let decls = go [] in
  { Ast.ruleset_name; decls }

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src
