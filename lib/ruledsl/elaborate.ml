module Pattern = Prairie.Pattern
module Value = Prairie_value.Value

exception Elab_error of string list

let pattern_arities pat =
  let rec go acc = function
    | Pattern.Pvar _ -> acc
    | Pattern.Pop (name, _, subs) ->
      List.fold_left go ((name, List.length subs) :: acc) subs
  in
  go [] pat

let tmpl_arities tmpl =
  let rec go acc = function
    | Pattern.Tvar _ -> acc
    | Pattern.Tnode (name, _, subs) ->
      List.fold_left go ((name, List.length subs) :: acc) subs
  in
  go [] tmpl

let elaborate ~helpers (spec : Ast.spec) =
  let errs = ref [] in
  (* [at loc fmt] prefixes the message with the declaration's source
     position, so elaboration failures point at line/column instead of
     being bare strings. *)
  let at (loc : Ast.loc) fmt =
    Printf.ksprintf
      (fun m ->
        let m =
          if loc = Ast.no_loc then m
          else Format.asprintf "%a: %s" Lexer.pp_position loc m
        in
        errs := m :: !errs)
      fmt
  in
  (* properties *)
  let props =
    List.filter_map
      (fun (name, ty_name, loc) ->
        match Value.ty_of_string ty_name with
        | Some ty -> Some (Prairie.Property.declare name ty)
        | None ->
          at loc "property %s: unknown type %s" name ty_name;
          None)
      (Ast.properties_located spec)
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, _, loc) ->
      if Hashtbl.mem seen name then at loc "duplicate property %s" name
      else Hashtbl.add seen name ())
    (Ast.properties_located spec);
  (* operators / algorithms *)
  let operators = Ast.operators spec in
  let algorithms =
    (Prairie.Irule.null_algorithm, 1) :: Ast.algorithms spec
  in
  let check_arity ~loc rule_name kind decls (name, arity) =
    match List.assoc_opt name decls with
    | Some declared when declared <> arity ->
      at loc "rule %s: %s %s used with arity %d but declared with %d" rule_name
        kind name arity declared
    | Some _ -> ()
    | None -> at loc "rule %s: undeclared %s %s" rule_name kind name
  in
  let known name = List.mem_assoc name operators || List.mem_assoc name algorithms in
  let check_node ~loc rule_name (name, arity) =
    if List.mem_assoc name operators then
      check_arity ~loc rule_name "operator" operators (name, arity)
    else if List.mem_assoc name algorithms then
      check_arity ~loc rule_name "algorithm" algorithms (name, arity)
    else if not (known name) then
      at loc "rule %s: undeclared operation %s" rule_name name
  in
  let check_rule (r : Ast.rule_body) =
    let loc = r.Ast.rb_loc in
    List.iter (check_node ~loc r.Ast.rb_name) (pattern_arities r.Ast.rb_lhs);
    List.iter (check_node ~loc r.Ast.rb_name) (tmpl_arities r.Ast.rb_rhs)
  in
  List.iter check_rule (Ast.trules spec);
  List.iter check_rule (Ast.irules spec);
  let trules =
    List.map
      (fun (r : Ast.rule_body) ->
        Prairie.Trule.make ~name:r.Ast.rb_name ~lhs:r.Ast.rb_lhs
          ~rhs:r.Ast.rb_rhs ~pre_test:r.Ast.rb_pre ~test:r.Ast.rb_test
          ~post_test:r.Ast.rb_post ())
      (Ast.trules spec)
  in
  let irules =
    List.map
      (fun (r : Ast.rule_body) ->
        Prairie.Irule.make ~name:r.Ast.rb_name ~lhs:r.Ast.rb_lhs
          ~rhs:r.Ast.rb_rhs ~test:r.Ast.rb_test ~pre_opt:r.Ast.rb_pre
          ~post_opt:r.Ast.rb_post ())
      (Ast.irules spec)
  in
  let ruleset =
    Prairie.Ruleset.make ~properties:props
      ~operators:(List.map fst operators)
      ~algorithms:(List.map fst algorithms)
      ~trules ~irules ~helpers spec.Ast.ruleset_name
  in
  (match Prairie.Ruleset.validate ruleset with
  | Ok () -> ()
  | Error es -> List.iter (fun e -> errs := e :: !errs) es);
  match List.rev !errs with
  | [] -> ruleset
  | es -> raise (Elab_error es)

let load_string ~helpers src = elaborate ~helpers (Parser.parse src)
let load ~helpers path = elaborate ~helpers (Parser.parse_file path)
