module Attribute = Prairie_value.Attribute
module Predicate = Prairie_value.Predicate
module Stored_file = Prairie_catalog.Stored_file
module Catalog = Prairie_catalog.Catalog
module Rng = Prairie_util.Rng

type spec = {
  classes : int;
  indexed : bool;
  card_range : int * int;
  detail_card_range : int * int;
  seed : int;
}

let default_spec ~classes ~indexed ~seed =
  { classes; indexed; card_range = (200, 2000); detail_card_range = (50, 500); seed }

let class_name i = Printf.sprintf "C%d" i
let detail_name i = Printf.sprintf "DC%d" i
let oid i = Attribute.make ~owner:(class_name i) ~name:"oid"

let b_attr i =
  Attribute.make ~owner:(class_name i) ~name:(Printf.sprintf "bC%d" i)

let ref_attr i =
  Attribute.make ~owner:(class_name i) ~name:(Printf.sprintf "rC%d" i)

let detail_ref i =
  Attribute.make ~owner:(class_name i) ~name:(Printf.sprintf "dC%d" i)

let set_attr i =
  Attribute.make ~owner:(class_name i) ~name:(Printf.sprintf "sC%d" i)

let join_pred i =
  Predicate.Cmp (Predicate.Eq, Predicate.T_attr (ref_attr i), Predicate.T_attr (oid (i + 1)))

let selection_pred ~classes =
  Predicate.of_conjuncts
    (List.init classes (fun k ->
         let i = k + 1 in
         Predicate.Cmp (Predicate.Eq, Predicate.T_attr (b_attr i), Predicate.T_int i)))

let hub_name = "H"
let satellite_name i = Printf.sprintf "S%d" i
let hub_ref i = Attribute.make ~owner:hub_name ~name:(Printf.sprintf "hS%d" i)

let satellite_b_attr i =
  Attribute.make ~owner:(satellite_name i) ~name:(Printf.sprintf "bS%d" i)

let star_join_pred i =
  Predicate.Cmp
    ( Predicate.Eq,
      Predicate.T_attr (hub_ref i),
      Predicate.T_attr (Attribute.make ~owner:(satellite_name i) ~name:"oid") )

(* Cardinality draws are sequenced explicitly ([init_seq], one draw per
   file, in file order) rather than buried inside list literals or
   [List.init]: OCaml evaluates list literals right-to-left and leaves the
   application order of [List.init] unspecified, so a draw hidden in
   [[ base i; detail i ]] would consume the stream in an order the
   language definition does not promise to keep.  With the explicit
   sequencing, the same [Rng.t] state always yields the same catalog. *)
let init_seq n f =
  let rec go i acc = if i > n then List.rev acc else go (i + 1) (f i :: acc) in
  go 1 []

let make_star_rng rng spec =
  let lo, hi = spec.card_range in
  let dlo, dhi = spec.detail_card_range in
  let satellite i card =
    let name = satellite_name i in
    let indexes =
      if spec.indexed then
        [
          {
            Stored_file.index_name = Printf.sprintf "%s_b_ix" name;
            on = satellite_b_attr i;
            unique = false;
          };
        ]
      else []
    in
    Stored_file.make ~name ~cardinality:card ~tuple_size:100 ~indexes
      [
        Stored_file.column ~distinct:card name "oid";
        Stored_file.column ~distinct:200 name (Printf.sprintf "bS%d" i);
      ]
  in
  let hub_card = Rng.in_range rng lo hi in
  let hub =
    Stored_file.make ~name:hub_name ~cardinality:hub_card ~tuple_size:150
      (Stored_file.column ~distinct:hub_card hub_name "oid"
      :: List.init spec.classes (fun k ->
             Stored_file.column ~distinct:50
               ~ref_to:(satellite_name (k + 1))
               hub_name
               (Printf.sprintf "hS%d" (k + 1))))
  in
  let satellites =
    init_seq spec.classes (fun i -> satellite i (Rng.in_range rng dlo dhi))
  in
  Catalog.of_files (hub :: satellites)

let make_star spec = make_star_rng (Rng.create spec.seed) spec

let make_rng rng spec =
  let lo, hi = spec.card_range in
  let dlo, dhi = spec.detail_card_range in
  let base i card =
    let name = class_name i in
    let columns =
      [
        Stored_file.column ~distinct:card name "oid";
        (* selective enough that an unclustered index beats a full scan *)
        Stored_file.column ~distinct:200 name (Printf.sprintf "bC%d" i);
        (* the last class's reference wraps around so that every [rCi] has a
           live target; only [rC1 .. rC(n-1)] appear in join predicates *)
        Stored_file.column ~distinct:50
          ~ref_to:(class_name (if i = spec.classes then 1 else i + 1))
          name
          (Printf.sprintf "rC%d" i);
        Stored_file.column ~distinct:30 ~ref_to:(detail_name i) name
          (Printf.sprintf "dC%d" i);
        (* a set-valued attribute, the target of UNNEST *)
        Stored_file.column ~distinct:3 ~set_valued:true name
          (Printf.sprintf "sC%d" i);
      ]
    in
    let indexes =
      if spec.indexed then
        [
          {
            Stored_file.index_name = Printf.sprintf "%s_b_ix" name;
            on = b_attr i;
            unique = false;
          };
        ]
      else []
    in
    Stored_file.make ~name ~cardinality:card ~tuple_size:120 ~indexes columns
  in
  let detail i card =
    let name = detail_name i in
    Stored_file.make ~name ~cardinality:card ~tuple_size:80
      [
        Stored_file.column ~distinct:card name "oid";
        Stored_file.column ~distinct:15 name (Printf.sprintf "x%d" i);
        Stored_file.column ~distinct:25 name (Printf.sprintf "y%d" i);
      ]
  in
  Catalog.of_files
    (List.concat
       (init_seq spec.classes (fun i ->
            let b = base i (Rng.in_range rng lo hi) in
            let d = detail i (Rng.in_range rng dlo dhi) in
            [ b; d ])))

let make spec = make_rng (Rng.create spec.seed) spec
