(** Synthetic Open OODB catalogs for the paper's experiments (§4.3).

    A catalog for an N-way join query holds base classes [C1 .. C(N+1)]
    forming a linear query graph: each [Ci] carries
    - [oid] — the object identity;
    - [bCi] — a scalar attribute (the selection predicates of E3/E4 test
      [bCi = i]), optionally indexed (queries Q2/Q4/Q6/Q8);
    - [rCi] — a reference attribute to [C(i+1)] (the join predicates are
      the reference equalities [Ci.rCi = C(i+1).oid]);
    - [dCi] — a reference attribute to a detail class [DCi], the one the
      E2/E4 expressions MATerialize;
    and a detail class [DCi] per base class.

    Cardinalities are drawn uniformly from [card_range] per class, from an
    explicit seed — the paper varies the cardinalities five times per data
    point and averages. *)

type spec = {
  classes : int;  (** number of base classes, i.e. joins + 1 *)
  indexed : bool;  (** one index per base class, on [bCi] *)
  card_range : int * int;  (** inclusive cardinality range *)
  detail_card_range : int * int;
  seed : int;
}

val default_spec : classes:int -> indexed:bool -> seed:int -> spec
(** Cardinalities 200–2000, detail classes 50–500. *)

val make : spec -> Prairie_catalog.Catalog.t
(** [make_rng (Rng.create spec.seed) spec]. *)

val make_rng : Prairie_util.Rng.t -> spec -> Prairie_catalog.Catalog.t
(** Like {!make}, but drawing cardinalities from a caller-supplied
    generator ([spec.seed] is ignored).  Draws are explicitly sequenced in
    file order, so the same generator state always yields the same catalog
    — the property the verifier's shrinking relies on. *)

val class_name : int -> string
(** [class_name i] is ["Ci"] (1-based). *)

val detail_name : int -> string

val oid : int -> Prairie_value.Attribute.t
val b_attr : int -> Prairie_value.Attribute.t
val ref_attr : int -> Prairie_value.Attribute.t
val detail_ref : int -> Prairie_value.Attribute.t

val set_attr : int -> Prairie_value.Attribute.t
(** [set_attr i] is the set-valued attribute [Ci.sCi] (fanout 3), the
    target of the UNNEST operator. *)

val join_pred : int -> Prairie_value.Predicate.t
(** [join_pred i] is [Ci.rCi = C(i+1).oid]. *)

val selection_pred : classes:int -> Prairie_value.Predicate.t
(** The E3/E4 selection: the conjunction of [bCi = i] over all classes. *)

(** {1 Star query graphs}

    The paper's stated future work ("in the future, we will experiment
    with non-linear (e.g. star) query graphs").  A star catalog has a hub
    class [H] carrying one reference attribute per satellite class [Si];
    every join predicate goes through the hub. *)

val make_star : spec -> Prairie_catalog.Catalog.t
(** [spec.classes] counts the satellites; the hub is created on top.
    Satellites have [bSi] selection attributes (indexed when the spec says
    so); the hub has [hSi] references to each satellite. *)

val make_star_rng : Prairie_util.Rng.t -> spec -> Prairie_catalog.Catalog.t
(** {!make_star} from a caller-supplied generator; see {!make_rng}. *)

val hub_name : string
val satellite_name : int -> string
val hub_ref : int -> Prairie_value.Attribute.t
val satellite_b_attr : int -> Prairie_value.Attribute.t

val star_join_pred : int -> Prairie_value.Predicate.t
(** [star_join_pred i] is [H.hSi = Si.oid]. *)
