module Attribute = Prairie_value.Attribute
module Predicate = Prairie_value.Predicate
module Order = Prairie_value.Order
module Value = Prairie_value.Value
module Stored_file = Prairie_catalog.Stored_file
module Catalog = Prairie_catalog.Catalog
module Rng = Prairie_util.Rng
module Init = Prairie_algebra.Init
module Expr = Prairie.Expr
module Descriptor = Prairie.Descriptor
module Pattern = Prairie.Pattern

type world = {
  catalog : Catalog.t;
  classes : int;
}

(* Draws are sequenced one per let-binding: the language evaluates
   right-to-left inside constructors and literals, and reproducibility of
   a case from its seed is the whole point of this module. *)
let world rng =
  let classes = Rng.in_range rng 2 3 in
  let indexed = Rng.bool rng in
  let lo = Rng.in_range rng 10 200 in
  let span = Rng.in_range rng 10 800 in
  let dlo = Rng.in_range rng 5 50 in
  let dspan = Rng.in_range rng 5 200 in
  let spec =
    {
      Catalogs.classes;
      indexed;
      card_range = (lo, lo + span);
      detail_card_range = (dlo, dlo + dspan);
      seed = 0;
    }
  in
  { catalog = Catalogs.make_rng rng spec; classes }

let with_catalog w catalog = { w with catalog }

let attrs_of e =
  match Descriptor.find (Expr.descriptor e) "attributes" with
  | Some (Value.Attrs l) -> l
  | _ -> []

let num_records_of e =
  match Descriptor.find (Expr.descriptor e) "num_records" with
  | Some (Value.Int n) -> n
  | Some (Value.Float f) -> int_of_float f
  | _ -> 1

let tuple_size_of e =
  match Descriptor.find (Expr.descriptor e) "tuple_size" with
  | Some (Value.Int n) -> n
  | _ -> 100

(* Fallback constructor for operators outside the Open OODB vocabulary
   (fixture rule sets declare their own).  The synthesized descriptor
   carries the three invariant properties every cost model here reads:
   the union of input attributes, the largest input cardinality and the
   summed tuple size. *)
let generic name children =
  let attrs =
    List.sort_uniq Attribute.compare (List.concat_map attrs_of children)
  in
  let num_records =
    List.fold_left (fun acc c -> max acc (num_records_of c)) 1 children
  in
  let tuple_size =
    max 1 (List.fold_left (fun acc c -> acc + tuple_size_of c) 0 children)
  in
  let desc =
    Descriptor.of_list
      [
        ("attributes", Value.Attrs attrs);
        ("num_records", Value.Int num_records);
        ("tuple_size", Value.Int tuple_size);
      ]
  in
  Expr.operator name desc children

let random_cmp rng attrs =
  let a = Rng.pick rng attrs in
  let v = Rng.in_range rng 1 5 in
  Predicate.Cmp (Predicate.Eq, Predicate.T_attr a, Predicate.T_int v)

let random_join_pred rng l r =
  match (attrs_of l, attrs_of r) with
  | (_ :: _ as la), (_ :: _ as ra) ->
    let a = Rng.pick rng la in
    let b = Rng.pick rng ra in
    Predicate.Cmp (Predicate.Eq, Predicate.T_attr a, Predicate.T_attr b)
  | _ -> Predicate.True

let random_class rng w = Catalogs.class_name (Rng.in_range rng 1 w.classes)

(* A leaf for a stream variable.  RET-vocabulary rule sets get retrieval
   subtrees (what their I-rules can implement); everything else gets bare
   stored files.  Occasionally the leaf is a small join so that patterns
   like SELECT(?1) also see composite inputs. *)
let leaf rng w ~ops =
  let stream () =
    let name = random_class rng w in
    if List.mem "RET" ops then Init.ret w.catalog name else Init.file w.catalog name
  in
  let l = stream () in
  if List.mem "JOIN" ops && Rng.int rng 4 = 0 then begin
    let r = stream () in
    let pred = random_join_pred rng l r in
    Init.join w.catalog ~pred l r
  end
  else l

let ref_attrs w e =
  List.filter (fun a -> Catalog.ref_target w.catalog a <> None) (attrs_of e)

let set_attrs w e =
  List.filter (fun a -> Catalog.is_set_valued w.catalog a) (attrs_of e)

let known_node rng w name children =
  match (name, children) with
  | "JOIN", [ l; r ] ->
    let pred = random_join_pred rng l r in
    Some (Init.join w.catalog ~pred l r)
  | "SELECT", [ c ] -> (
    match attrs_of c with
    | [] -> None
    | attrs -> Some (Init.select w.catalog ~pred:(random_cmp rng attrs) c))
  | "SORT", [ c ] -> (
    match attrs_of c with
    | [] -> None
    | attrs ->
      let a = Rng.pick rng attrs in
      Some (Init.sort w.catalog ~order:(Order.sorted_on a) c))
  | "PROJECT", [ c ] -> (
    match attrs_of c with
    | [] -> None
    | attrs ->
      let keep = List.filter (fun _ -> Rng.bool rng) attrs in
      let keep = if keep = [] then [ List.hd attrs ] else keep in
      Some (Init.project w.catalog ~attrs:keep c))
  | "MAT", [ c ] -> (
    match ref_attrs w c with
    | [] -> None
    | refs -> Some (Init.mat w.catalog ~attr:(Rng.pick rng refs) c))
  | "UNNEST", [ c ] -> (
    match set_attrs w c with
    | [] -> None
    | sets -> Some (Init.unnest w.catalog ~attr:(Rng.pick rng sets) c))
  | _ -> None

let rec of_pattern rng w ~ops pat =
  match pat with
  | Pattern.Pvar _ -> leaf rng w ~ops
  | Pattern.Pop ("RET", _, [ Pattern.Pvar _ ]) ->
    (* RET's stream input is a stored file, not an arbitrary subtree *)
    let with_pred = Rng.bool rng in
    let name = random_class rng w in
    if with_pred then
      let file = Init.file w.catalog name in
      Init.ret ~pred:(random_cmp rng (attrs_of file)) w.catalog name
    else Init.ret w.catalog name
  | Pattern.Pop (name, _, subs) ->
    let children =
      List.rev
        (List.fold_left
           (fun acc sub -> of_pattern rng w ~ops sub :: acc)
           [] subs)
    in
    (match known_node rng w name children with
    | Some e -> e
    | None -> generic name children)

(* Workload families restricted to the rule set's vocabulary: E2/E4
   materialize (MAT), E3/E4 select — generating an operator the rule set
   does not declare would just produce an unoptimizable query. *)
let family_ok ops = function
  | Expressions.E1 -> true
  | Expressions.E2 -> List.mem "MAT" ops
  | Expressions.E3 -> List.mem "SELECT" ops
  | Expressions.E4 -> List.mem "MAT" ops && List.mem "SELECT" ops

let expr rng w ~ops =
  let joins = Rng.in_range rng 1 (max 1 (min 2 (w.classes - 1))) in
  let families =
    match List.filter (family_ok ops) Expressions.all_families with
    | [] -> [ Expressions.E1 ]
    | fs -> fs
  in
  let family = Rng.pick rng families in
  Expressions.build family w.catalog ~joins

let known_ops =
  [ "JOIN"; "SELECT"; "SORT"; "PROJECT"; "MAT"; "UNNEST"; "RET" ]

let rec of_vocabulary rng w ~ops ~depth =
  let names = List.map fst ops in
  if depth <= 0 || ops = [] then leaf rng w ~ops:names
  else begin
    let name, arity = Rng.pick rng ops in
    if String.equal name "RET" then begin
      let name = random_class rng w in
      Init.ret w.catalog name
    end
    else begin
      let children =
        List.rev
          (List.fold_left
             (fun acc _ -> of_vocabulary rng w ~ops ~depth:(depth - 1) :: acc)
             []
             (List.init arity Fun.id))
      in
      match known_node rng w name children with
      | Some e -> e
      | None when List.mem name known_ops -> (
        (* a known constructor that cannot apply here (e.g. MAT with no
           reference attribute in scope): skip the node rather than build
           a malformed one the rule set's helpers would choke on *)
        match children with
        | c :: _ -> c
        | [] -> leaf rng w ~ops:names)
      | None -> generic name children
    end
  end

let shrink_catalog catalog =
  let changed = ref false in
  let shrink_file (f : Stored_file.t) =
    let cardinality =
      if f.Stored_file.cardinality > 1 then begin
        changed := true;
        f.Stored_file.cardinality / 2
      end
      else f.Stored_file.cardinality
    in
    let columns =
      List.map
        (fun (c : Stored_file.column) ->
          { c with Stored_file.distinct = max 1 (min c.Stored_file.distinct cardinality) })
        f.Stored_file.columns
    in
    { f with Stored_file.cardinality; columns }
  in
  let files = List.map shrink_file (Catalog.files catalog) in
  if !changed then Some (Catalog.of_files files) else None

let catalog_summary catalog =
  Catalog.files catalog
  |> List.map (fun (f : Stored_file.t) ->
         Printf.sprintf "%s(%d)" f.Stored_file.name f.Stored_file.cardinality)
  |> String.concat " "
