(** Random catalogs and pattern-directed expressions for the semantic
    verifier ({!Prairie_verify}).

    Everything here is driven by an explicit {!Prairie_util.Rng.t}; draws
    are sequenced deterministically, so a case regenerates exactly from
    its seed.  Catalog statistics (cardinalities, distinct counts) can be
    shrunk without disturbing the draw sequence: attribute names, index
    and reference structure are cardinality-independent, which is what
    lets the verifier re-run a failing case against a smaller catalog. *)

type world = {
  catalog : Prairie_catalog.Catalog.t;
  classes : int;  (** number of base classes [C1..Cn] in the catalog *)
}

val world : Prairie_util.Rng.t -> world
(** A random Open OODB catalog (2–3 base classes plus details, random
    cardinality ranges, possibly indexed). *)

val with_catalog : world -> Prairie_catalog.Catalog.t -> world
(** Replace the catalog (e.g. with a shrunk one), keeping the shape. *)

val expr : Prairie_util.Rng.t -> world -> ops:string list -> Prairie.Expr.t
(** A random workload-family expression (E1–E4, 1–2 joins) over the
    world's catalog — only meaningful for rule sets speaking the Open
    OODB vocabulary (RET/JOIN at minimum; [ops] further restricts the
    families so the query mentions only declared operators). *)

val of_vocabulary :
  Prairie_util.Rng.t ->
  world ->
  ops:(string * int) list ->
  depth:int ->
  Prairie.Expr.t
(** A random expression over an arbitrary operator vocabulary
    [(name, arity)] — the generator for rule sets outside the Open OODB
    vocabulary (e.g. test fixtures).  Known operators use their smart
    constructors; unknown ones get generic nodes. *)

val of_pattern :
  Prairie_util.Rng.t ->
  world ->
  ops:string list ->
  Prairie.Pattern.t ->
  Prairie.Expr.t
(** An expression matching the shape of a T-rule LHS pattern.  Known
    operators (JOIN, SELECT, RET, SORT, PROJECT, MAT, UNNEST) are built
    with {!Prairie_algebra.Init} smart constructors and randomly
    synthesized parameters; operators outside that vocabulary get a
    generic node whose descriptor carries synthesized [attributes],
    [num_records] and [tuple_size].  [ops] is the rule set's operator
    vocabulary (controls leaf style: RET subtrees vs bare files). *)

val shrink_catalog :
  Prairie_catalog.Catalog.t -> Prairie_catalog.Catalog.t option
(** Halve every cardinality above 1 (clamping distinct counts); [None]
    once nothing can shrink further. *)

val catalog_summary : Prairie_catalog.Catalog.t -> string
(** One-line [name(cardinality)] listing, for counterexample witnesses. *)
