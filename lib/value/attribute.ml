type t = { owner : string; name : string }

let make ~owner ~name = { owner; name }
let owner t = t.owner
let name t = t.name
let equal a b =
  a == b || (String.equal a.owner b.owner && String.equal a.name b.name)

let compare a b =
  match String.compare a.owner b.owner with
  | 0 -> String.compare a.name b.name
  | c -> c

let hash t = Hashtbl.hash (t.owner, t.name)
let to_string t = if t.owner = "" then t.name else t.owner ^ "." ^ t.name

let of_string s =
  match String.index_opt s '.' with
  | None -> { owner = ""; name = s }
  | Some i ->
    { owner = String.sub s 0 i;
      name = String.sub s (i + 1) (String.length s - i - 1) }

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
