type ty =
  | T_bool
  | T_int
  | T_float
  | T_cost
  | T_string
  | T_order
  | T_pred
  | T_attrs
  | T_list

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Order of Order.t
  | Pred of Predicate.t
  | Attrs of Attribute.t list
  | List of t list

exception Type_error of string

let ty_to_string = function
  | T_bool -> "BOOL"
  | T_int -> "INT"
  | T_float -> "FLOAT"
  | T_cost -> "COST"
  | T_string -> "STRING"
  | T_order -> "ORDER"
  | T_pred -> "PREDICATE"
  | T_attrs -> "ATTRIBUTES"
  | T_list -> "LIST"

let ty_of_string s =
  match String.uppercase_ascii s with
  | "BOOL" -> Some T_bool
  | "INT" -> Some T_int
  | "FLOAT" -> Some T_float
  | "COST" -> Some T_cost
  | "STRING" -> Some T_string
  | "ORDER" -> Some T_order
  | "PREDICATE" -> Some T_pred
  | "ATTRIBUTES" -> Some T_attrs
  | "LIST" -> Some T_list
  | _ -> None

let has_ty v ty =
  match (v, ty) with
  | Null, _ -> true
  | Bool _, T_bool
  | Int _, T_int
  | Float _, (T_float | T_cost)
  | Int _, (T_float | T_cost)
  | Str _, T_string
  | Order _, T_order
  | Pred _, T_pred
  | Attrs _, T_attrs
  | List _, T_list ->
    true
  | (Bool _ | Int _ | Float _ | Str _ | Order _ | Pred _ | Attrs _ | List _), _
    ->
    false

(* Physical-equality fast paths throughout: descriptor interning makes
   derived descriptors share value structure (whole values, attribute-list
   tails, predicate trees), so [==] settles almost every comparison on the
   optimizer hot paths without walking the structure. *)
let rec attrs_equal x y =
  x == y
  ||
  match (x, y) with
  | [], [] -> true
  | a :: xs, b :: ys -> Attribute.equal a b && attrs_equal xs ys
  | [], _ :: _ | _ :: _, [] -> false

let rec equal a b =
  a == b
  ||
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Order x, Order y -> Order.equal x y
  | Pred x, Pred y -> Predicate.equal x y
  | Attrs x, Attrs y -> attrs_equal x y
  | List x, List y -> list_equal x y
  | ( ( Null | Bool _ | Int _ | Float _ | Str _ | Order _ | Pred _ | Attrs _
      | List _ ),
      _ ) ->
    false

and list_equal x y =
  x == y
  ||
  match (x, y) with
  | [], [] -> true
  | a :: xs, b :: ys -> equal a b && list_equal xs ys
  | [], _ :: _ | _ :: _, [] -> false

let compare a b = Stdlib.compare a b
let hash v = Hashtbl.hash v

let rec to_repr = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "%S" s
  | Order o -> Order.to_string o
  | Pred p -> Predicate.to_string p
  | Attrs attrs ->
    "{" ^ String.concat ", " (List.map Attribute.to_string attrs) ^ "}"
  | List vs -> "[" ^ String.concat "; " (List.map to_repr vs) ^ "]"

let pp ppf v = Format.pp_print_string ppf (to_repr v)
let type_error op v = raise (Type_error (op ^ ": " ^ to_repr v))

let to_bool = function Bool b -> b | v -> type_error "to_bool" v
let to_int = function Int i -> i | v -> type_error "to_int" v

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> type_error "to_float" v

let to_string_value = function Str s -> s | v -> type_error "to_string" v
let to_order = function Order o -> o | Null -> Order.Any | v -> type_error "to_order" v
let to_pred = function Pred p -> p | Null -> Predicate.True | v -> type_error "to_pred" v
let to_attrs = function Attrs a -> a | Null -> [] | v -> type_error "to_attrs" v
let to_list = function List l -> l | v -> type_error "to_list" v

let numeric2 name fi ff a b =
  match (a, b) with
  | Int x, Int y -> Int (fi x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (ff (to_float a) (to_float b))
  | Int _, v | Float _, v | v, _ -> type_error name v

let add a b =
  match (a, b) with
  | Str x, Str y -> Str (x ^ y)
  | Attrs x, Attrs y ->
    (* attribute-set union, preserving order of first appearance *)
    Attrs (x @ List.filter (fun a' -> not (List.exists (Attribute.equal a') x)) y)
  | _ -> numeric2 "add" ( + ) ( +. ) a b

let sub = numeric2 "sub" ( - ) ( -. )
let mul = numeric2 "mul" ( * ) ( *. )

let div a b =
  match (a, b) with
  | Int x, Int y when y <> 0 && x mod y = 0 -> Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) ->
    let d = to_float b in
    if Float.equal d 0. then type_error "div by zero" b
    else Float (to_float a /. d)
  | v, _ -> type_error "div" v

let cmp (c : Predicate.comparison) a b =
  let test (n : int) =
    match c with
    | Eq -> n = 0
    | Ne -> n <> 0
    | Lt -> n < 0
    | Le -> n <= 0
    | Gt -> n > 0
    | Ge -> n >= 0
  in
  match (c, a, b) with
  | Predicate.Eq, _, _ -> equal a b
  | Predicate.Ne, _, _ -> not (equal a b)
  | _, (Int _ | Float _), (Int _ | Float _) ->
    test (Float.compare (to_float a) (to_float b))
  | _, Str x, Str y -> test (String.compare x y)
  | _, v, _ -> type_error "cmp" v

let truthy = function Bool b -> b | v -> type_error "test must be boolean" v
