(** Static analysis of Prairie rule specifications.

    The linter runs five check families over a parsed spec and returns
    structured {!Prairie.Diagnostic.t} findings in the stable report
    order:

    - {b declaration analysis} (P001–P009): undeclared / unused
      properties and operations, arity mismatches, duplicate
      declarations, duplicate and shadowed rules, operators that no
      I-rule can ever implement;
    - {b binding analysis} (P010–P016): descriptors read before they are
      bound, unused named descriptors, stream variables that do not line
      up across the rewrite, unregistered helper functions, descriptor
      names that alias implicit stream descriptors;
    - {b classification conflicts} (P020–P023): COST properties assigned
      outside I-rule post sections or read in tests, I-rules that never
      cost their output, physical properties assigned on logical
      operator descriptors;
    - {b termination analysis} (P030–P031): unguarded self-inverse
      rewrites and unguarded rewrite cycles in the T-rule digraph;
    - {b enforcer sanity} (P040–P043): malformed [Null] I-rules and
      enforcer operators that cannot do their job.

    Warnings can be downgraded to [Info] with a source pragma:
    [// lint:allow P030 -- justification].  Pragmas never downgrade
    errors. *)

val catalogue : Prairie.Diagnostic.catalogue
(** Every diagnostic code the linter can emit, with its default severity
    and a one-line description.  [P000] is the syntax-error code used by
    {!lint_string} / {!lint_file} when parsing fails. *)

val check_spec :
  ?helpers:Prairie.Helper_env.t ->
  Prairie_dsl.Ast.spec ->
  Prairie.Diagnostic.t list
(** Run all check families over an already-parsed spec.  Helper-function
    checks (P015) run only when [helpers] is given.  The result is
    deduplicated and sorted ({!Prairie.Diagnostic.normalize}); the input
    spec is never modified. *)

val lint_string :
  ?helpers:Prairie.Helper_env.t -> string -> Prairie.Diagnostic.t list
(** Parse and lint a spec from source text.  Lex and parse failures
    become a single [P000] error carrying the failure position.
    [lint:allow] pragmas in the source are applied. *)

val lint_file :
  ?helpers:Prairie.Helper_env.t -> string -> Prairie.Diagnostic.t list
(** {!lint_string} on the contents of a file. *)

val allow_pragmas : string -> (string * int) list
(** The [(code, line)] pairs of every [lint:allow] pragma in the source,
    in order of appearance.  The pragma namespace is shared with
    {!Prairie_verify}: a [lint:allow P230] pragma downgrades the verifier's
    P230 warnings the same way. *)

val apply_pragmas : (string * int) list -> Prairie.Diagnostic.t list -> Prairie.Diagnostic.t list
(** Downgrade warnings whose code appears in the pragma list to [Info],
    recording the pragma line in the hint.  Errors are never downgraded.
    Exposed so other diagnostic producers (the semantic verifier) honor
    the same pragmas. *)

val summary : Prairie.Diagnostic.t list -> int * int * int
(** [(errors, warnings, infos)] counts. *)

(** {1 Shared spec utilities}

    Exposed for {!Prairie_analysis}, which analyzes the same parsed specs
    and must agree with the linter on elaboration, source positions and
    shape strings (the P008 / P320 split depends on both sides computing
    identical shapes). *)

val ruleset_of_spec : Prairie_dsl.Ast.spec -> Prairie.Ruleset.t
(** Best-effort elaboration of a parsed spec into a core rule set:
    well-formed rules only, unknown property types dropped.  Unlike
    {!Prairie_dsl.Elaborate.elaborate} it never raises — checkers run it
    on specs that still carry errors. *)

val rule_loc : Prairie_dsl.Ast.spec -> string -> Prairie.Diagnostic.span option
(** Source span of the named rule, when the spec records one. *)

val span_of : Prairie_dsl.Ast.loc -> Prairie.Diagnostic.span option

val pat_shape : Prairie.Pattern.t -> string
(** Operator shape of a pattern with stream variables erased to ["_"] —
    the node label of the termination digraph and the P008 equality key. *)

val tmpl_shape : Prairie.Pattern.tmpl -> string
(** Template shape; re-descriptored stream variables render as ["_!"]
    (they push a requirement, a different rewrite than a pass-through). *)

val is_tt : Prairie.Action.expr -> bool
(** Is the expression the literal [TRUE] test (an unguarded rule)? *)
