module Ast = Prairie_dsl.Ast
module Lexer = Prairie_dsl.Lexer
module Parser = Prairie_dsl.Parser
module D = Prairie.Diagnostic
module Pattern = Prairie.Pattern
module Action = Prairie.Action
module Trule = Prairie.Trule
module Irule = Prairie.Irule
module Property = Prairie.Property
module Ruleset = Prairie.Ruleset
module Helper_env = Prairie.Helper_env
module Value = Prairie_value.Value
module Order = Prairie_value.Order
module Enforcers = Prairie_p2v.Enforcers
module Classify = Prairie_p2v.Classify

let catalogue : D.catalogue =
  [
    ("P000", D.Error, "syntax error (lexing or parsing failed)");
    ("P001", D.Error, "reference to an undeclared property");
    ("P002", D.Warning, "declared property is never referenced by any rule");
    ("P003", D.Error, "reference to an undeclared operator or algorithm");
    ("P004", D.Warning, "declared operator or algorithm is never used by any rule");
    ("P005", D.Error, "operator or algorithm used with the wrong arity");
    ("P006", D.Error, "duplicate declaration");
    ("P007", D.Error, "duplicate rule name");
    ("P008", D.Warning, "rule duplicates another rule's rewrite with an overlapping test");
    ("P009", D.Error, "operator has no I-rule and can never be implemented");
    ("P010", D.Error, "descriptor variable is read but never bound");
    ("P011", D.Warning, "named descriptor variable is never used");
    ("P012", D.Error, "RHS stream variable is not bound by the LHS pattern");
    ("P013", D.Info, "LHS stream variable does not appear on the RHS");
    ("P014", D.Warning, "stream variable bound more than once in the LHS pattern");
    ("P015", D.Error, "helper function is not registered");
    ("P016", D.Warning, "descriptor name collides with an implicit stream descriptor");
    ("P020", D.Error, "COST property assigned outside an I-rule post section");
    ("P021", D.Warning, "COST property read in a rule test");
    ("P022", D.Error, "I-rule never assigns a cost to its output descriptor");
    ("P023", D.Warning, "physical property assigned on a logical operator descriptor");
    ("P030", D.Warning, "unguarded self-inverse rewrite (commutativity loop)");
    ("P031", D.Warning, "unguarded rewrite cycle between T-rules");
    ("P040", D.Error, "Null I-rule on a multi-input operator");
    ("P041", D.Warning, "enforcer operator has a non-single-input implementation");
    ("P042", D.Warning, "Null I-rule enforces no property");
    ("P043", D.Warning, "enforcer operator has no enforcer algorithm");
  ]

let span_of (loc : Ast.loc) =
  if loc = Ast.no_loc then None
  else Some { D.line = loc.Lexer.line; column = loc.Lexer.column }

(* ------------------------------------------------------------------ *)
(* Small AST walks                                                     *)
(* ------------------------------------------------------------------ *)

let pattern_nodes pat =
  let rec go acc = function
    | Pattern.Pvar _ -> acc
    | Pattern.Pop (name, _, subs) ->
      List.fold_left go ((name, List.length subs) :: acc) subs
  in
  List.rev (go [] pat)

let tmpl_nodes_arity tmpl =
  let rec go acc = function
    | Pattern.Tvar _ -> acc
    | Pattern.Tnode (name, _, subs) ->
      List.fold_left go ((name, List.length subs) :: acc) subs
  in
  List.rev (go [] tmpl)

(* Named descriptor variables, i.e. the [:Dx] annotations the rule writer
   chose (implicit stream descriptors [D1], [D2], ... are excluded). *)
let named_descs (r : Ast.rule_body) =
  let rec pat acc = function
    | Pattern.Pvar _ -> acc
    | Pattern.Pop (_, d, subs) -> List.fold_left pat (d :: acc) subs
  in
  let rec tmpl acc = function
    | Pattern.Tvar (_, None) -> acc
    | Pattern.Tvar (_, Some d) -> d :: acc
    | Pattern.Tnode (_, d, subs) -> List.fold_left tmpl (d :: acc) subs
  in
  List.sort_uniq String.compare (tmpl (pat [] r.Ast.rb_lhs) r.Ast.rb_rhs)

let rule_stmts (r : Ast.rule_body) = r.Ast.rb_pre @ r.Ast.rb_post

let rule_exprs (r : Ast.rule_body) =
  List.map (function Action.Assign_desc (_, e) | Action.Assign_prop (_, _, e) -> e)
    (rule_stmts r)
  @ [ r.Ast.rb_test ]

(* Properties referenced (read or written) by a rule. *)
let props_of_rule (r : Ast.rule_body) =
  let rec of_expr acc = function
    | Action.Const _ | Action.Desc _ -> acc
    | Action.Prop (_, p) -> p :: acc
    | Action.Call (_, args) -> List.fold_left of_expr acc args
    | Action.Binop (_, a, b) -> of_expr (of_expr acc a) b
    | Action.Unop (_, a) -> of_expr acc a
  in
  let writes =
    List.filter_map
      (function Action.Assign_prop (_, p, _) -> Some p | Action.Assign_desc _ -> None)
      (rule_stmts r)
  in
  List.sort_uniq String.compare
    (writes @ List.fold_left of_expr [] (rule_exprs r))

let helpers_of_rule (r : Ast.rule_body) =
  let rec go acc = function
    | Action.Const _ | Action.Desc _ | Action.Prop _ -> acc
    | Action.Call (name, args) -> List.fold_left go (name :: acc) args
    | Action.Binop (_, a, b) -> go (go acc a) b
    | Action.Unop (_, a) -> go acc a
  in
  List.sort_uniq String.compare (List.fold_left go [] (rule_exprs r))

let is_tt = function
  | Action.Const (Value.Bool true) -> true
  | _ -> false

let is_dont_care_const = function
  | Action.Const (Value.Order Order.Any) -> true
  | _ -> false

(* Operator-shape of a pattern/template with variables erased — the node
   of the termination digraph. *)
let rec pat_shape = function
  | Pattern.Pvar _ -> "_"
  | Pattern.Pop (name, _, subs) ->
    name ^ "(" ^ String.concat "," (List.map pat_shape subs) ^ ")"

(* A re-descriptored stream variable pushes a requirement onto its input —
   a different rewrite than passing the stream through, so it gets its own
   shape marker. *)
let rec tmpl_shape = function
  | Pattern.Tvar (_, None) -> "_"
  | Pattern.Tvar (_, Some _) -> "_!"
  | Pattern.Tnode (name, _, subs) ->
    name ^ "(" ^ String.concat "," (List.map tmpl_shape subs) ^ ")"

(* ------------------------------------------------------------------ *)
(* Family 1: declaration analysis                                      *)
(* ------------------------------------------------------------------ *)

let check_declarations (spec : Ast.spec) =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let props = Ast.properties_located spec in
  let ops = Ast.operators_located spec in
  let algs = Ast.algorithms_located spec in
  let rules = Ast.rules spec in
  (* P006: duplicate declarations *)
  let check_dups kind decls =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (name, loc) ->
        if Hashtbl.mem seen name then
          emit
            (D.error ~code:"P006" ?span:(span_of loc)
               ~hint:"remove or rename the duplicate declaration"
               (Printf.sprintf "duplicate %s declaration %s" kind name))
        else Hashtbl.add seen name loc)
      decls
  in
  check_dups "property" (List.map (fun (n, _, l) -> (n, l)) props);
  check_dups "operator" (List.map (fun (n, _, l) -> (n, l)) ops);
  check_dups "algorithm" (List.map (fun (n, _, l) -> (n, l)) algs);
  List.iter
    (fun (n, _, loc) ->
      if List.exists (fun (n', _, _) -> String.equal n n') ops then
        emit
          (D.error ~code:"P006" ?span:(span_of loc)
             ~hint:"operators and algorithms share one namespace"
             (Printf.sprintf "%s is declared both as an operator and an algorithm" n)))
    algs;
  (* declared operations, with the implicit single-input Null enforcer *)
  let declared_ops = List.map (fun (n, a, _) -> (n, a)) ops in
  let declared_algs =
    (Irule.null_algorithm, 1) :: List.map (fun (n, a, _) -> (n, a)) algs
  in
  (* P003 / P005: every pattern and template node against the declarations *)
  let check_node rule_name loc (name, arity) =
    match
      (List.assoc_opt name declared_ops, List.assoc_opt name declared_algs)
    with
    | None, None ->
      emit
        (D.error ~code:"P003" ~rule:rule_name ?span:(span_of loc)
           ~hint:
             (Printf.sprintf "declare it: 'operator %s(%d);' or 'algorithm %s(%d);'"
                name arity name arity)
           (Printf.sprintf "undeclared operation %s" name))
    | Some declared, _ | None, Some declared ->
      if declared <> arity then
        emit
          (D.error ~code:"P005" ~rule:rule_name ?span:(span_of loc)
             (Printf.sprintf "%s is used with arity %d but declared with arity %d"
                name arity declared))
  in
  List.iter
    (fun (_, r) ->
      List.iter
        (check_node r.Ast.rb_name r.Ast.rb_loc)
        (pattern_nodes r.Ast.rb_lhs @ tmpl_nodes_arity r.Ast.rb_rhs))
    rules;
  (* P001 / P002: property references vs declarations *)
  let declared_props = List.map (fun (n, _, _) -> n) props in
  let used_props =
    List.sort_uniq String.compare
      (List.concat_map (fun (_, r) -> props_of_rule r) rules)
  in
  List.iter
    (fun (_, r) ->
      List.iter
        (fun p ->
          if not (List.mem p declared_props) then
            emit
              (D.error ~code:"P001" ~rule:r.Ast.rb_name ?span:(span_of r.Ast.rb_loc)
                 ~hint:(Printf.sprintf "add 'property %s : <TYPE>;'" p)
                 (Printf.sprintf "property %s is not declared" p)))
        (props_of_rule r))
    rules;
  List.iter
    (fun (n, _, loc) ->
      if not (List.mem n used_props) then
        emit
          (D.warning ~code:"P002" ?span:(span_of loc)
             ~hint:"remove the declaration, or reference the property in a rule"
             (Printf.sprintf "property %s is declared but never referenced" n)))
    props;
  (* P004: unused operators/algorithms *)
  let used_ops =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (_, r) ->
           List.map fst
             (pattern_nodes r.Ast.rb_lhs @ tmpl_nodes_arity r.Ast.rb_rhs))
         rules)
  in
  let check_used kind decls =
    List.iter
      (fun (n, _, loc) ->
        if not (List.mem n used_ops) then
          emit
            (D.warning ~code:"P004" ?span:(span_of loc)
               (Printf.sprintf "%s %s is declared but never used by any rule" kind n)))
      decls
  in
  check_used "operator" ops;
  check_used "algorithm" algs;
  (* P007: duplicate rule names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (_, r) ->
      if Hashtbl.mem seen r.Ast.rb_name then
        emit
          (D.error ~code:"P007" ~rule:r.Ast.rb_name ?span:(span_of r.Ast.rb_loc)
             (Printf.sprintf "rule name %s is already used" r.Ast.rb_name))
      else Hashtbl.add seen r.Ast.rb_name ())
    rules;
  (* P008: same rewrite (LHS and RHS shapes) with an overlapping test *)
  let overlapping t1 t2 = is_tt t1 || is_tt t2 || t1 = t2 in
  let rec pairs = function
    | [] -> ()
    | (k1, r1) :: rest ->
      List.iter
        (fun (k2, r2) ->
          if
            k1 = k2
            && String.equal (pat_shape r1.Ast.rb_lhs) (pat_shape r2.Ast.rb_lhs)
            && String.equal (tmpl_shape r1.Ast.rb_rhs) (tmpl_shape r2.Ast.rb_rhs)
            && (match k1 with
               | `Irule ->
                 (* same algorithm — alternative implementations are fine *)
                 Pattern.root_operator r1.Ast.rb_lhs = Pattern.root_operator r2.Ast.rb_lhs
               | `Trule -> true)
            && overlapping r1.Ast.rb_test r2.Ast.rb_test
          then
            emit
              (D.warning ~code:"P008" ~rule:r2.Ast.rb_name
                 ?span:(span_of r2.Ast.rb_loc)
                 ~hint:"add a discriminating test or remove one of the rules"
                 (Printf.sprintf
                    "rule %s repeats rule %s's rewrite with an overlapping test; \
                     both fire on every match"
                    r2.Ast.rb_name r1.Ast.rb_name)))
        rest;
      pairs rest
  in
  pairs rules;
  (* P009: operators that no I-rule implements *)
  let implemented =
    List.filter_map
      (function
        | `Irule, r -> Pattern.root_operator r.Ast.rb_lhs
        | `Trule, _ -> None)
      rules
  in
  List.iter
    (fun (n, _, loc) ->
      if List.mem n used_ops && not (List.mem n implemented) then
        emit
          (D.error ~code:"P009" ?span:(span_of loc)
             ~hint:"add an I-rule with this operator on its LHS"
             (Printf.sprintf
                "operator %s has no I-rule: expressions using it can never be \
                 implemented"
                n)))
    ops;
  !ds

(* ------------------------------------------------------------------ *)
(* Family 2: binding analysis                                          *)
(* ------------------------------------------------------------------ *)

let check_bindings ?helpers (spec : Ast.spec) =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  List.iter
    (fun (kind, r) ->
      let name = r.Ast.rb_name in
      let span = span_of r.Ast.rb_loc in
      let lhs_vars = Pattern.vars r.Ast.rb_lhs in
      let rhs_vars = Pattern.tmpl_vars r.Ast.rb_rhs in
      let lhs_descs = Pattern.desc_vars r.Ast.rb_lhs in
      let rhs_descs = Pattern.tmpl_desc_vars r.Ast.rb_rhs in
      (* P012: RHS stream variables must come from the LHS *)
      List.iter
        (fun v ->
          if not (List.mem v lhs_vars) then
            emit
              (D.error ~code:"P012" ~rule:name ?span
                 (Printf.sprintf
                    "RHS stream variable ?%d is not bound by the LHS pattern" v)))
        rhs_vars;
      (* P013: LHS stream variables that the rewrite drops *)
      List.iter
        (fun v ->
          if not (List.mem v rhs_vars) then
            emit
              (D.info ~code:"P013" ~rule:name ?span
                 (Printf.sprintf
                    "LHS stream variable ?%d does not appear on the RHS; the \
                     input stream is discarded"
                    v)))
        lhs_vars;
      (* P014: non-linear LHS patterns silently overwrite bindings *)
      let rec raw_vars acc = function
        | Pattern.Pvar i -> i :: acc
        | Pattern.Pop (_, _, subs) -> List.fold_left raw_vars acc subs
      in
      let raw = raw_vars [] r.Ast.rb_lhs in
      List.iter
        (fun v ->
          if List.length (List.filter (Int.equal v) raw) > 1 then
            emit
              (D.warning ~code:"P014" ~rule:name ?span
                 ~hint:"pattern matching binds the variable twice; the second \
                        binding wins silently"
                 (Printf.sprintf "stream variable ?%d is bound more than once \
                                  in the LHS" v)))
        lhs_vars;
      (* P016: a chosen descriptor name that collides with an implicit
         stream descriptor aliases two different streams *)
      let implicit =
        List.map Pattern.stream_desc_name
          (List.sort_uniq Int.compare (lhs_vars @ rhs_vars))
      in
      List.iter
        (fun d ->
          if List.mem d implicit then
            emit
              (D.warning ~code:"P016" ~rule:name ?span
                 ~hint:"rename the descriptor; Dn is reserved for stream ?n"
                 (Printf.sprintf
                    "descriptor %s collides with the implicit descriptor of a \
                     stream variable"
                    d)))
        (named_descs r);
      (* P010: reads of descriptors that are neither pattern-bound nor
         assigned by an earlier statement.  The LHS descriptors (including
         implicit stream descriptors) are bound at match time; RHS
         descriptors are outputs that statements must fill before use. *)
      let bound = ref lhs_descs in
      let is_bound d = List.mem d !bound in
      let read_check section e =
        List.iter
          (fun d ->
            if not (is_bound d) then
              let flavor =
                if List.mem d rhs_descs then
                  Printf.sprintf
                    "descriptor %s is read in the %s section before any \
                     statement assigns it"
                    d section
                else
                  Printf.sprintf
                    "descriptor %s is read in the %s section but never bound" d
                    section
              in
              emit
                (D.error ~code:"P010" ~rule:name ?span
                   ~hint:
                     "bind it on the LHS/RHS or assign it before the first read"
                   flavor))
          (Action.read_descriptors e)
      in
      let run_stmts section stmts =
        List.iter
          (fun s ->
            (match s with
            | Action.Assign_desc (_, e) | Action.Assign_prop (_, _, e) ->
              read_check section e);
            let d = Action.assigned_descriptor s in
            if not (is_bound d) then bound := d :: !bound)
          stmts
      in
      run_stmts "pre" r.Ast.rb_pre;
      read_check "test" r.Ast.rb_test;
      run_stmts "post" r.Ast.rb_post;
      (* P011: named descriptors that no section ever touches *)
      let touched =
        List.concat_map
          (fun s -> Action.assigned_descriptor s :: Action.stmt_read_descriptors s)
          (rule_stmts r)
        @ Action.read_descriptors r.Ast.rb_test
      in
      List.iter
        (fun d ->
          if not (List.mem d touched) then
            emit
              (D.warning ~code:"P011" ~rule:name ?span
                 (Printf.sprintf
                    "descriptor %s is bound but never read or assigned" d)))
        (named_descs r);
      (* P015: unregistered helper functions *)
      (match helpers with
      | None -> ()
      | Some env ->
        List.iter
          (fun h ->
            if not (Helper_env.mem env h) then
              emit
                (D.error ~code:"P015" ~rule:name ?span
                   ~hint:"register it in the helper environment"
                   (Printf.sprintf "helper function %s is not registered" h)))
          (helpers_of_rule r));
      ignore kind)
    (Ast.rules spec);
  !ds

(* ------------------------------------------------------------------ *)
(* A best-effort core rule set for the P2V-level analyses              *)
(* ------------------------------------------------------------------ *)

let ruleset_of_spec (spec : Ast.spec) =
  let properties =
    List.filter_map
      (fun (name, ty_name) ->
        Option.map (Property.declare name) (Value.ty_of_string ty_name))
      (Ast.properties spec)
  in
  let well_formed (r : Ast.rule_body) =
    match (r.Ast.rb_lhs, r.Ast.rb_rhs) with
    | Pattern.Pop _, Pattern.Tnode _ -> true
    | _ -> false
  in
  let trules =
    List.map
      (fun (r : Ast.rule_body) ->
        Trule.make ~name:r.Ast.rb_name ~lhs:r.Ast.rb_lhs ~rhs:r.Ast.rb_rhs
          ~pre_test:r.Ast.rb_pre ~test:r.Ast.rb_test ~post_test:r.Ast.rb_post ())
      (List.filter well_formed (Ast.trules spec))
  in
  let irules =
    List.map
      (fun (r : Ast.rule_body) ->
        Irule.make ~name:r.Ast.rb_name ~lhs:r.Ast.rb_lhs ~rhs:r.Ast.rb_rhs
          ~test:r.Ast.rb_test ~pre_opt:r.Ast.rb_pre ~post_opt:r.Ast.rb_post ())
      (List.filter well_formed (Ast.irules spec))
  in
  Ruleset.make ~properties
    ~operators:(List.map fst (Ast.operators spec))
    ~algorithms:(Irule.null_algorithm :: List.map fst (Ast.algorithms spec))
    ~trules ~irules spec.Ast.ruleset_name

let rule_loc (spec : Ast.spec) name =
  match
    List.find_opt (fun (_, r) -> String.equal r.Ast.rb_name name) (Ast.rules spec)
  with
  | Some (_, r) -> span_of r.Ast.rb_loc
  | None -> None

(* ------------------------------------------------------------------ *)
(* Family 3: P2V classification conflicts                              *)
(* ------------------------------------------------------------------ *)

let check_classification (spec : Ast.spec) =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let ruleset = ruleset_of_spec spec in
  let cost_props = Property.cost_properties ruleset.Ruleset.properties in
  let is_cost p = List.mem p cost_props in
  let classification = Classify.classify ruleset in
  let physical = classification.Classify.physical in
  let enforcer_ops =
    List.map (fun (i : Enforcers.info) -> i.Enforcers.operator)
      (Enforcers.detect ruleset)
  in
  (* P020: cost is computed bottom-up in I-rule post sections; assigning it
     anywhere else (T-rules, I-rule pre) runs before input costs exist *)
  let scan_stmts rule_name loc where stmts =
    List.iter
      (function
        | Action.Assign_prop (_, p, _) when is_cost p ->
          emit
            (D.error ~code:"P020" ~rule:rule_name ?span:loc
               ~hint:"compute costs in the I-rule post section only"
               (Printf.sprintf
                  "COST property %s is assigned in %s, before input costs are \
                   known"
                  p where))
        | Action.Assign_prop _ | Action.Assign_desc _ -> ())
      stmts
  in
  List.iter
    (fun (kind, r) ->
      let loc = span_of r.Ast.rb_loc in
      match kind with
      | `Trule ->
        scan_stmts r.Ast.rb_name loc "a T-rule pre section" r.Ast.rb_pre;
        scan_stmts r.Ast.rb_name loc "a T-rule post section" r.Ast.rb_post
      | `Irule -> scan_stmts r.Ast.rb_name loc "an I-rule pre section" r.Ast.rb_pre)
    (Ast.rules spec);
  (* P021: tests run before costing *)
  List.iter
    (fun (_, r) ->
      let rec reads_cost = function
        | Action.Const _ | Action.Desc _ -> false
        | Action.Prop (_, p) -> is_cost p
        | Action.Call (_, args) -> List.exists reads_cost args
        | Action.Binop (_, a, b) -> reads_cost a || reads_cost b
        | Action.Unop (_, a) -> reads_cost a
      in
      if reads_cost r.Ast.rb_test then
        emit
          (D.warning ~code:"P021" ~rule:r.Ast.rb_name ?span:(span_of r.Ast.rb_loc)
             "the rule test reads a COST property; tests run before plans are \
              costed"))
    (Ast.rules spec);
  (* P022: every I-rule must produce a cost on its output descriptor *)
  if cost_props = [] then begin
    if Ast.irules spec <> [] then
      emit
        (D.error ~code:"P022"
           ~hint:"declare a property of type COST"
           "no COST-typed property is declared; I-rules cannot cost their plans")
  end
  else
    List.iter
      (fun (r : Ast.rule_body) ->
        match r.Ast.rb_rhs with
        | Pattern.Tvar _ -> ()
        | Pattern.Tnode (_, out, _) ->
          let assigns_cost =
            List.exists
              (function
                | Action.Assign_prop (d, p, _) -> String.equal d out && is_cost p
                | Action.Assign_desc (d, _) -> String.equal d out)
              r.Ast.rb_post
          in
          if not assigns_cost then
            emit
              (D.error ~code:"P022" ~rule:r.Ast.rb_name
                 ?span:(span_of r.Ast.rb_loc)
                 ~hint:
                   (Printf.sprintf "assign %s.%s in the post section" out
                      (List.hd cost_props))
                 (Printf.sprintf
                    "I-rule %s never assigns a cost to its output descriptor %s"
                    r.Ast.rb_name out)))
      (Ast.irules spec);
  (* P023: physical properties belong on stream requirements (re-descriptored
     inputs) or enforcer descriptors, not on logical operator descriptors *)
  List.iter
    (fun (r : Ast.rule_body) ->
      let node_descs = Pattern.tmpl_nodes r.Ast.rb_rhs in
      List.iter
        (function
          | Action.Assign_prop (d, p, e)
            when List.mem p physical && not (is_dont_care_const e) -> (
            match List.find_opt (fun (_, d') -> String.equal d d') node_descs with
            | Some (op, _) when not (List.mem op enforcer_ops) ->
              emit
                (D.warning ~code:"P023" ~rule:r.Ast.rb_name
                   ?span:(span_of r.Ast.rb_loc)
                   ~hint:
                     "physical properties are requested on streams or \
                      established by enforcers"
                   (Printf.sprintf
                      "physical property %s is assigned on logical operator \
                       %s's descriptor %s"
                      p op d))
            | Some _ | None -> ())
          | Action.Assign_prop _ | Action.Assign_desc _ -> ())
        (rule_stmts r))
    (Ast.trules spec);
  !ds

(* ------------------------------------------------------------------ *)
(* Family 4: termination analysis                                      *)
(* ------------------------------------------------------------------ *)

(* The rewrite digraph: one node per operator shape, one edge per T-rule.
   An edge is unguarded when the rule's test is the constant TRUE — nothing
   discriminates the redexes, so following it never stops.  An unguarded
   self-loop is the paper's commutativity hazard (benign only under
   memoized search); a strongly-connected component of unguarded edges is
   a rewrite loop that regenerates its own redexes forever. *)
let check_termination (spec : Ast.spec) =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let edges =
    List.map
      (fun (r : Ast.rule_body) ->
        (r, pat_shape r.Ast.rb_lhs, tmpl_shape r.Ast.rb_rhs, is_tt r.Ast.rb_test))
      (Ast.trules spec)
  in
  (* P030: unguarded self-loops *)
  List.iter
    (fun (r, lhs, rhs, unguarded) ->
      if unguarded && String.equal lhs rhs then
        emit
          (D.warning ~code:"P030" ~rule:r.Ast.rb_name ?span:(span_of r.Ast.rb_loc)
             ~hint:
               "safe only under memoized (Volcano-style) search; add a test if \
                the engine does not deduplicate expressions"
             (Printf.sprintf
                "T-rule %s rewrites shape %s to itself with no discriminating \
                 test (commutativity loop)"
                r.Ast.rb_name lhs)))
    edges;
  (* P031: unguarded cycles through at least two shapes (inverse pairs and
     longer loops), via Tarjan SCC over the unguarded edges only *)
  let unguarded_edges =
    List.filter_map
      (fun (r, lhs, rhs, unguarded) ->
        if unguarded && not (String.equal lhs rhs) then Some (r, lhs, rhs)
        else None)
      edges
  in
  let nodes =
    List.sort_uniq String.compare
      (List.concat_map (fun (_, a, b) -> [ a; b ]) unguarded_edges)
  in
  let succ n =
    List.filter_map
      (fun (_, a, b) -> if String.equal a n then Some b else None)
      unguarded_edges
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strongconnect n) nodes;
  List.iter
    (fun scc ->
      if List.length scc >= 2 then begin
        let members (_, a, b) = List.mem a scc && List.mem b scc in
        let cycle_rules = List.filter members unguarded_edges in
        let first_rule =
          List.fold_left
            (fun acc (r, _, _) ->
              match acc with None -> Some r | Some _ -> acc)
            None cycle_rules
        in
        let names =
          String.concat ", "
            (List.map (fun (r, _, _) -> r.Ast.rb_name) cycle_rules)
        in
        emit
          (D.warning ~code:"P031"
             ?rule:(Option.map (fun r -> r.Ast.rb_name) first_rule)
             ?span:
               (match first_rule with
               | Some r -> span_of r.Ast.rb_loc
               | None -> None)
             ~hint:"guard at least one rule of the cycle with a test"
             (Printf.sprintf
                "unguarded rewrite cycle between shapes %s (rules %s)"
                (String.concat " -> " scc) names))
      end)
    !sccs;
  !ds

(* ------------------------------------------------------------------ *)
(* Family 5: enforcer sanity                                           *)
(* ------------------------------------------------------------------ *)

let check_enforcers (spec : Ast.spec) =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let irules =
    List.filter_map
      (fun (r : Ast.rule_body) ->
        match (r.Ast.rb_lhs, r.Ast.rb_rhs) with
        | Pattern.Pop (op, _, subs), Pattern.Tnode (alg, _, _) ->
          Some (r, op, List.length subs, alg)
        | _ -> None)
      (Ast.irules spec)
  in
  let null_rules =
    List.filter (fun (_, _, _, alg) -> String.equal alg Irule.null_algorithm) irules
  in
  (* P040: enforcers are single-input by construction *)
  List.iter
    (fun ((r : Ast.rule_body), op, arity, _) ->
      if arity <> 1 then
        emit
          (D.error ~code:"P040" ~rule:r.Ast.rb_name ?span:(span_of r.Ast.rb_loc)
             ~hint:"the Volcano translation can only delete single-input nodes"
             (Printf.sprintf
                "Null I-rule %s marks %s as an enforcer, but the operator has \
                 %d inputs"
                r.Ast.rb_name op arity)))
    null_rules;
  (* P041: every other implementation of an enforcer operator must be
     single-input too, or enforcer detection silently mis-translates *)
  List.iter
    (fun ((_ : Ast.rule_body), op, arity, _) ->
      if arity = 1 then
        List.iter
          (fun ((r' : Ast.rule_body), op', arity', alg') ->
            if
              String.equal op op'
              && (not (String.equal alg' Irule.null_algorithm))
              && arity' <> 1
            then
              emit
                (D.warning ~code:"P041" ~rule:r'.Ast.rb_name
                   ?span:(span_of r'.Ast.rb_loc)
                   (Printf.sprintf
                      "enforcer operator %s has implementation %s with %d \
                       inputs; enforcer algorithms must be single-input"
                      op r'.Ast.rb_name arity')))
          irules)
    null_rules;
  (* P042 / P043 on the detected enforcers of the elaborated set *)
  let infos = Enforcers.detect (ruleset_of_spec spec) in
  List.iter
    (fun (i : Enforcers.info) ->
      let null_name = i.Enforcers.null_rule.Irule.name in
      let loc = rule_loc spec null_name in
      if i.Enforcers.enforced_properties = [] then
        emit
          (D.warning ~code:"P042" ~rule:null_name ?span:loc
             ~hint:
               "propagate a property in the pre section, e.g. 'D3.p = D2.p;' \
                on the re-descriptored input"
             (Printf.sprintf
                "Null I-rule %s enforces no property; operator %s becomes a \
                 free no-op"
                null_name i.Enforcers.operator));
      if i.Enforcers.algorithm_rules = [] then
        emit
          (D.warning ~code:"P043" ~rule:null_name ?span:loc
             ~hint:"add an I-rule implementing the operator with an algorithm"
             (Printf.sprintf
                "enforcer operator %s has no enforcer algorithm; nothing can \
                 re-establish %s"
                i.Enforcers.operator
                (match i.Enforcers.enforced_properties with
                | [] -> "its property"
                | ps -> String.concat ", " ps))))
    infos;
  !ds

(* ------------------------------------------------------------------ *)
(* Pragmas                                                             *)
(* ------------------------------------------------------------------ *)

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  if nn = 0 then None else go 0

let is_code s =
  String.length s >= 2
  && s.[0] = 'P'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 (String.length s - 1))

let allow_pragmas src =
  let marker = "lint:allow" in
  List.concat
    (List.mapi
       (fun i line ->
         match find_sub line marker with
         | None -> []
         | Some j ->
           let rest =
             String.sub line
               (j + String.length marker)
               (String.length line - j - String.length marker)
           in
           (* the justification after "--" is free text *)
           let rest =
             match find_sub rest "--" with
             | Some k -> String.sub rest 0 k
             | None -> rest
           in
           rest
           |> String.map (function ',' | ';' -> ' ' | c -> c)
           |> String.split_on_char ' '
           |> List.filter is_code
           |> List.map (fun code -> (code, i + 1)))
       (String.split_on_char '\n' src))

let apply_pragmas pragmas ds =
  List.map
    (fun (d : D.t) ->
      match List.find_opt (fun (code, _) -> String.equal code d.D.code) pragmas with
      | Some (_, line) when D.is_warning d ->
        let note = Printf.sprintf "downgraded by lint:allow at line %d" line in
        {
          d with
          D.severity = D.Info;
          hint =
            (match d.D.hint with
            | None -> Some note
            | Some h -> Some (h ^ " (" ^ note ^ ")"));
        }
      | _ -> d)
    ds

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let check_spec ?helpers (spec : Ast.spec) =
  D.normalize
    (check_declarations spec
    @ check_bindings ?helpers spec
    @ check_classification spec
    @ check_termination spec
    @ check_enforcers spec)

let lint_string ?helpers src =
  match Parser.parse src with
  | exception Lexer.Lex_error (pos, msg) ->
    [
      D.error ~code:"P000"
        ~span:{ D.line = pos.Lexer.line; column = pos.Lexer.column }
        (Printf.sprintf "lexical error: %s" msg);
    ]
  | exception Parser.Parse_error (pos, msg) ->
    [
      D.error ~code:"P000"
        ~span:{ D.line = pos.Lexer.line; column = pos.Lexer.column }
        (Printf.sprintf "parse error: %s" msg);
    ]
  | spec ->
    D.normalize (apply_pragmas (allow_pragmas src) (check_spec ?helpers spec))

let lint_file ?helpers path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  lint_string ?helpers src

let summary = D.summary
