(** Rule merging and compaction (paper §3.3).

    Translating Prairie to Volcano deletes enforcer-operators.  A T-rule
    whose right-hand side wraps stream variables in enforcer-operators, like

    {v JOIN(?1,?2):D3 ==> JOPR(SORT(?1):D4, SORT(?2):D5):D6 v}

    loses its SORT nodes: the enforcer descriptors [D4]/[D5] become
    {e re-descriptored requirements} on the streams,
    [JOPR(?1:D4, ?2:D5):D6].  If the stripped rule is a pure renaming
    [JOIN ==> JOPR] of an operator introduced only by this rule, the rule
    is composed with every I-rule of the introduced operator, yielding a
    single merged I-rule per algorithm:

    {v JOIN(?1,?2):D3 ==> Merge_join(?1:D4, ?2:D5):D6' v}

    and both the renaming T-rule and the introduced operator disappear.
    The paper's arithmetic follows: #T-rules = #trans_rules + one
    enforcer-introduction T-rule per operator, and #I-rules = #impl_rules +
    one Null rule per enforcer-operator + one rule per enforcer-algorithm. *)

type result = {
  source : Prairie.Ruleset.t;
  enforcer_infos : Enforcers.info list;
  trans_trules : Prairie.Trule.t list;
      (** surviving T-rules → Volcano trans_rules *)
  impl_irules : Prairie.Irule.t list;
      (** surviving and composed I-rules → Volcano impl_rules *)
  dropped_operators : string list;
      (** enforcer-operators and composed-away introduced operators *)
  composed : (string * string) list;
      (** (T-rule, I-rule) pairs that were merged *)
  warnings : Prairie.Diagnostic.t list;
      (** translation findings (codes P101–P106), deduplicated and in the
          stable {!Prairie.Diagnostic.compare} order *)
}

val merge : ?compose:bool -> Prairie.Ruleset.t -> result
(** Run enforcer deletion and (unless [compose:false], the
    [ablation-merge] configuration) rename-rule composition. *)

val trans_rule_count : result -> int
val impl_rule_count : result -> int
val enforcer_count : result -> int

val pp : Format.formatter -> result -> unit
