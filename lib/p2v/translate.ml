module Descriptor = Prairie.Descriptor
module Pattern = Prairie.Pattern
module Binding = Prairie.Pattern.Binding
module Trule = Prairie.Trule
module Irule = Prairie.Irule
module Eval = Prairie.Eval
module Expr = Prairie.Expr
module Rule = Prairie_volcano.Rule

type mode =
  [ `Compiled
  | `Interpreted
  ]

type t = {
  merge : Merge.result;
  classification : Classify.classification;
  volcano : Rule.ruleset;
  dead_trans : string list;
}

let binding_of_denv denv = { Binding.streams = []; descs = denv }

(* The two code-generation strategies: staging the statement lists into
   closures once (the default — the analog of P2V emitting C code), or
   re-interpreting the ASTs on every rule invocation (the
   [ablation-codegen] configuration). *)
type evaluator = {
  ev_stmts :
    protected:string list -> Prairie.Action.stmt list -> Binding.t -> Binding.t;
  ev_test : Prairie.Action.expr -> Binding.t -> bool;
}

let evaluator mode helpers =
  match mode with
  | `Compiled ->
    {
      ev_stmts = (fun ~protected ss -> Prairie.Compiled.stmts ~protected helpers ss);
      ev_test = (fun e -> Prairie.Compiled.test helpers e);
    }
  | `Interpreted ->
    {
      ev_stmts =
        (fun ~protected ss b -> Eval.exec_stmts ~protected helpers b ss);
      ev_test = (fun e b -> Eval.eval_test helpers b e);
    }

let trans_of_trule ?(mode = `Compiled) helpers (t : Trule.t) : Rule.trans_rule =
  let ev = evaluator mode helpers in
  let protected = Trule.input_descriptors t in
  let pre = ev.ev_stmts ~protected t.Trule.pre_test in
  let tst = ev.ev_test t.Trule.test in
  let post = ev.ev_stmts ~protected t.Trule.post_test in
  {
    Rule.tr_name = t.Trule.name;
    tr_lhs = t.Trule.lhs;
    tr_rhs = t.Trule.rhs;
    tr_cond =
      (fun denv ->
        let b = pre (binding_of_denv denv) in
        if tst b then Some b.Binding.descs else None);
    tr_appl = (fun denv -> (post (binding_of_denv denv)).Binding.descs);
  }

(* Stream variables of an I-rule LHS in positional order. *)
let positional_vars (r : Irule.t) =
  match r.Irule.lhs with
  | Pattern.Pop (_, _, subs) ->
    List.map
      (function
        | Pattern.Pvar i -> i
        | Pattern.Pop _ -> invalid_arg "I-rule LHS inputs must be variables")
      subs
  | Pattern.Pvar _ -> invalid_arg "I-rule LHS must be an operator"

let impl_of_irule ?(mode = `Compiled) helpers ~physical (r : Irule.t) :
    Rule.impl_rule =
  let ev = evaluator mode helpers in
  let op_d = Irule.operator_descriptor r in
  let alg_d = Irule.algorithm_descriptor r in
  let pos_vars = positional_vars r in
  let redescs = Irule.redescriptored_inputs r in
  let protected = Irule.input_descriptors r in
  let tst = ev.ev_test r.Irule.test in
  let pre = ev.ev_stmts ~protected r.Irule.pre_opt in
  let post = ev.ev_stmts ~protected:[ op_d ] r.Irule.post_opt in
  let mk_binding ~op_arg ~req ~inputs =
    let descs =
      (op_d, Descriptor.merge ~base:op_arg ~overrides:req)
      :: List.mapi
           (fun k v -> (Pattern.stream_desc_name v, inputs.(k)))
           pos_vars
    in
    binding_of_denv descs
  in
  {
    Rule.ir_name = r.Irule.name;
    ir_op = Irule.operator r;
    ir_alg = Irule.algorithm r;
    ir_arity = List.length pos_vars;
    ir_cond =
      (fun ~op_arg ~req ~inputs -> tst (mk_binding ~op_arg ~req ~inputs));
    ir_input_reqs =
      (fun ~op_arg ~req ~inputs ->
        let b = pre (mk_binding ~op_arg ~req ~inputs) in
        Array.of_list
          (List.map
             (fun v ->
               match List.assoc_opt v redescs with
               | Some dvar ->
                 Descriptor.restrict (Binding.desc b dvar) physical
               | None -> Descriptor.empty)
             pos_vars));
    ir_finalize =
      (fun ~op_arg ~req ~inputs ->
        (* pre-opt over the achieved input descriptors, then rebind the
           re-descriptored variables to the achieved descriptors (paper
           §2.4: post-opt runs after the inputs are optimized), then
           post-opt. *)
        let b = pre (mk_binding ~op_arg ~req ~inputs) in
        let b =
          List.fold_left
            (fun b (k, v) ->
              match List.assoc_opt v redescs with
              | Some dvar -> Binding.bind_desc b dvar inputs.(k)
              | None -> b)
            b
            (List.mapi (fun k v -> (k, v)) pos_vars)
        in
        Binding.desc (post b) alg_d);
  }

let enforcer_of_irule ?(mode = `Compiled) helpers ~enforced (r : Irule.t) :
    Rule.enforcer =
  let ev = evaluator mode helpers in
  let op_d = Irule.operator_descriptor r in
  let alg_d = Irule.algorithm_descriptor r in
  let stream_v =
    match positional_vars r with
    | [ v ] -> v
    | _ -> invalid_arg "enforcer-algorithm rules take a single stream input"
  in
  let protected = Irule.input_descriptors r in
  let tst = ev.ev_test r.Irule.test in
  let pre = ev.ev_stmts ~protected r.Irule.pre_opt in
  let post = ev.ev_stmts ~protected:[ op_d ] r.Irule.post_opt in
  {
    Rule.en_name = r.Irule.name;
    en_alg = Irule.algorithm r;
    en_applies = (fun ~req -> tst (binding_of_denv [ (op_d, req) ]));
    en_relaxed = (fun ~req -> Descriptor.without req enforced);
    en_finalize =
      (fun ~req ~input ->
        let descs =
          [
            (op_d, Descriptor.merge ~base:input ~overrides:req);
            (Pattern.stream_desc_name stream_v, input);
          ]
        in
        Binding.desc (post (pre (binding_of_denv descs))) alg_d);
  }

let translate ?compose ?(mode = `Compiled) (ruleset : Prairie.Ruleset.t) =
  let merge = Merge.merge ?compose ruleset in
  let classification = Classify.classify ruleset in
  let helpers = ruleset.Prairie.Ruleset.helpers in
  let physical = classification.Classify.physical in
  (* A T-rule whose test constant-folds to FALSE can never fire; dropping
     it here — before codegen — keeps the indexed and un-indexed search
     paths in exact agreement (neither ever sees the rule, so neither
     records a match for it). *)
  let live_trules, dead_trules =
    List.partition
      (fun (t : Trule.t) ->
        Prairie.Action.fold_const t.Trule.test
        <> Some (Prairie_value.Value.Bool false))
      merge.Merge.trans_trules
  in
  let trans = List.map (trans_of_trule ~mode helpers) live_trules in
  let impl =
    List.map (impl_of_irule ~mode helpers ~physical) merge.Merge.impl_irules
  in
  let enforcers =
    List.concat_map
      (fun (info : Enforcers.info) ->
        List.map
          (enforcer_of_irule ~mode helpers
             ~enforced:info.Enforcers.enforced_properties)
          info.Enforcers.algorithm_rules)
      merge.Merge.enforcer_infos
  in
  let volcano =
    Rule.make_ruleset ~trans ~impl ~enforcers ~physical
      (ruleset.Prairie.Ruleset.name ^ "-p2v")
  in
  {
    merge;
    classification;
    volcano;
    dead_trans = List.map (fun (t : Trule.t) -> t.Trule.name) dead_trules;
  }

let prepare_query t expr =
  let infos = t.merge.Merge.enforcer_infos in
  let info_of op =
    List.find_opt
      (fun (i : Enforcers.info) -> String.equal i.Enforcers.operator op)
      infos
  in
  (* Collect enforced properties of root-level enforcer-operators into the
     required physical properties; delete interior occurrences. *)
  let rec strip_root req = function
    | Expr.Node (Expr.Operator, name, d, [ child ]) as e -> (
      match info_of name with
      | Some info ->
        let props =
          Descriptor.restrict d info.Enforcers.enforced_properties
        in
        strip_root (Descriptor.merge ~base:req ~overrides:props) child
      | None -> (e, req))
    | e -> (e, req)
  in
  let rec strip_interior = function
    | Expr.Stored _ as e -> e
    | Expr.Node (kind, name, d, inputs) -> (
      let inputs = List.map strip_interior inputs in
      match (info_of name, inputs) with
      | Some _, [ child ] -> child
      | _ -> Expr.Node (kind, name, d, inputs))
  in
  let root, req = strip_root Descriptor.empty expr in
  let root =
    match root with
    | Expr.Stored _ -> root
    | Expr.Node (kind, name, d, inputs) ->
      Expr.Node (kind, name, d, List.map strip_interior inputs)
  in
  (root, req)
