(** The P2V translation report (paper §4.2).

    Summarizes what the pre-processor did to a rule set: rule counts before
    and after merging, the property classification, and the specification
    sizes — the programmer-productivity comparison the paper reports
    (22 T-rules + 11 I-rules → 17 trans_rules + 9 impl_rules for the
    Open OODB rule set; ≈10 % smaller specification). *)

type t = {
  ruleset_name : string;
  prairie_trules : int;
  prairie_irules : int;
  volcano_trans : int;
  volcano_impl : int;
  volcano_enforcers : int;
  enforcer_operators : string list;
  composed_pairs : (string * string) list;
  cost_properties : string list;
  physical_properties : string list;
  argument_properties : string list;
  prairie_spec_size : int;  (** {!Prairie.Ruleset.spec_size} of the source *)
  volcano_spec_size : int;
      (** same metric over the generated rules, plus the per-rule support
          functions Volcano requires (4 per impl_rule, 2 per trans_rule) —
          the hand-coding effort the generated code replaces *)
  warnings : Prairie.Diagnostic.t list;
}

val of_translation : Translate.t -> t

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report (what [prairiec --report] prints). *)
