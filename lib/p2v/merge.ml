module Trule = Prairie.Trule
module Irule = Prairie.Irule
module Action = Prairie.Action
module Pattern = Prairie.Pattern
module Diagnostic = Prairie.Diagnostic

type result = {
  source : Prairie.Ruleset.t;
  enforcer_infos : Enforcers.info list;
  trans_trules : Trule.t list;
  impl_irules : Irule.t list;
  dropped_operators : string list;
  composed : (string * string) list;
  warnings : Diagnostic.t list;
}

(* ------------------------------------------------------------------ *)
(* Enforcer-operator deletion                                          *)
(* ------------------------------------------------------------------ *)

(* Strip enforcer-operator nodes from a template: [SORT(?1):D4] becomes the
   re-descriptored stream [?1:D4] — the enforcer's descriptor (carrying the
   order requirement computed by the rule's actions) becomes a physical
   property request on the stream. *)
let rec strip_tmpl ~is_enf ~warn ~root tmpl =
  match tmpl with
  | Pattern.Tvar _ -> tmpl
  | Pattern.Tnode (name, dvar, [ Pattern.Tvar (i, None) ]) when is_enf name ->
    Pattern.Tvar (i, Some dvar)
  | Pattern.Tnode (name, dvar, [ sub ]) when is_enf name ->
    (* An enforcer-operator at the RHS root (the per-operator
       enforcer-introduction T-rules of footnote 7) simply disappears: the
       Volcano engine re-establishes the property with the enforcer
       whenever a requirement demands it.  Deeper occurrences lose their
       requirement, which deserves a warning. *)
    if not root then
      warn ~code:"P101"
        (Printf.sprintf
           "enforcer-operator %s (descriptor %s) wraps an interior \
            subexpression; deleting the node loses its requirement"
           name dvar);
    strip_tmpl ~is_enf ~warn ~root sub
  | Pattern.Tnode (name, dvar, subs) ->
    Pattern.Tnode
      (name, dvar, List.map (strip_tmpl ~is_enf ~warn ~root:false) subs)

let rec strip_pat ~is_enf ~warn pat =
  match pat with
  | Pattern.Pvar _ -> pat
  | Pattern.Pop (name, dvar, [ sub ]) when is_enf name ->
    warn ~code:"P102"
      (Printf.sprintf
         "enforcer-operator %s (descriptor %s) occurs on a rule LHS; the \
          node is deleted"
         name dvar);
    strip_pat ~is_enf ~warn sub
  | Pattern.Pop (name, dvar, subs) ->
    Pattern.Pop (name, dvar, List.map (strip_pat ~is_enf ~warn) subs)

(* ------------------------------------------------------------------ *)
(* Rename-rule detection and composition                               *)
(* ------------------------------------------------------------------ *)

type rename = {
  rn_rule : Trule.t;  (** after enforcer stripping *)
  rn_from : string;  (** LHS operator *)
  rn_to : string;  (** RHS operator (the introduced one) *)
  rn_vars : int list;
  rn_redescs : (int * string) list;  (** stream requirements from enforcers *)
}

let rename_candidate (t : Trule.t) =
  match (t.Trule.lhs, t.Trule.rhs) with
  | Pattern.Pop (op, _, subs), Pattern.Tnode (op', _, tsubs)
    when List.length subs = List.length tsubs -> (
    let lvars =
      List.filter_map (function Pattern.Pvar i -> Some i | Pattern.Pop _ -> None) subs
    in
    let tvars =
      List.filter_map
        (function Pattern.Tvar (i, rd) -> Some (i, rd) | Pattern.Tnode _ -> None)
        tsubs
    in
    if
      List.length lvars = List.length subs
      && List.length tvars = List.length tsubs
      && List.map fst tvars = lvars
      && List.sort_uniq Int.compare lvars = List.sort Int.compare lvars
    then
      Some
        {
          rn_rule = t;
          rn_from = op;
          rn_to = op';
          rn_vars = lvars;
          rn_redescs =
            List.filter_map
              (function i, Some d -> Some (i, d) | _, None -> None)
              tvars;
        }
    else None)
  | (Pattern.Pvar _ | Pattern.Pop _), (Pattern.Tvar _ | Pattern.Tnode _) ->
    None

(* Operators used anywhere in a rule, for the "introduced only here"
   check. *)
let trule_ops (t : Trule.t) =
  let rec pat_ops acc = function
    | Pattern.Pvar _ -> acc
    | Pattern.Pop (name, _, subs) -> List.fold_left pat_ops (name :: acc) subs
  in
  let rec tmpl_ops acc = function
    | Pattern.Tvar _ -> acc
    | Pattern.Tnode (name, _, subs) -> List.fold_left tmpl_ops (name :: acc) subs
  in
  tmpl_ops (pat_ops [] t.Trule.lhs) t.Trule.rhs

(* [resolve_op_desc t r]: the descriptor-variable substitution that lets
   [r]'s test run before [t]'s actions.  [r]'s test may read its operator
   descriptor; in the composed rule that descriptor ([t]'s RHS root, say
   [D6]) is only computed by [t]'s actions, which run in pre-opt — after
   the test.  If [t]'s actions begin with a whole-descriptor copy
   [D6 = Dsrc] from an LHS descriptor, and no property that [r]'s test
   reads is reassigned on [D6] afterwards, the test can read [Dsrc]
   directly. *)
let resolve_op_desc (t : Trule.t) rhs_desc test_props =
  let stmts = t.Trule.pre_test @ t.Trule.post_test in
  let copy_src =
    List.find_map
      (function
        | Action.Assign_desc (d, Action.Desc src) when String.equal d rhs_desc ->
          Some src
        | Action.Assign_desc _ | Action.Assign_prop _ -> None)
      stmts
  in
  match copy_src with
  | None -> None
  | Some src ->
    let clobbered =
      List.exists
        (function
          | Action.Assign_prop (d, p, _) ->
            String.equal d rhs_desc && List.mem p test_props
          | Action.Assign_desc _ -> false)
        stmts
    in
    if clobbered then None else Some src

let rec props_read_from dvar (e : Action.expr) =
  match e with
  | Action.Const _ | Action.Desc _ -> []
  | Action.Prop (d, p) -> if String.equal d dvar then [ p ] else []
  | Action.Call (_, args) -> List.concat_map (props_read_from dvar) args
  | Action.Binop (_, a, b) -> props_read_from dvar a @ props_read_from dvar b
  | Action.Unop (_, a) -> props_read_from dvar a

(* Compose a rename T-rule with one I-rule of the introduced operator. *)
let compose_rules ~(warn : ?rule:string -> code:string -> string -> unit)
    (rn : rename) (r : Irule.t) : Irule.t option =
  let t = rn.rn_rule in
  let t_lhs_descs = Pattern.desc_vars t.Trule.lhs in
  let t_rhs_root_desc =
    match t.Trule.rhs with
    | Pattern.Tnode (_, d, _) -> d
    | Pattern.Tvar _ -> assert false
  in
  (* t's test must be evaluable at I-rule test time: only LHS reads. *)
  let t_test_ok =
    List.for_all
      (fun d -> List.mem d t_lhs_descs)
      (Action.read_descriptors t.Trule.test)
  in
  if not t_test_ok then begin
    warn ~rule:t.Trule.name ~code:"P103"
      (Printf.sprintf
         "cannot compose %s with %s: the T-rule test reads computed \
          descriptors"
         t.Trule.name r.Irule.name);
    None
  end
  else
    (* Positional correspondence between r's stream variables and t's. *)
    let r_vars = Pattern.vars r.Irule.lhs in
    if List.length r_vars <> List.length rn.rn_vars then None
    else
      let pairs = List.combine r_vars rn.rn_vars in
      let r_op_desc = Irule.operator_descriptor r in
      let r_outputs = Irule.output_descriptors r in
      (* Fresh names for r's output descriptors. *)
      let used = ref (t_lhs_descs @ Pattern.tmpl_desc_vars t.Trule.rhs) in
      let freshen =
        List.map
          (fun d ->
            let rec pick k =
              let cand = Printf.sprintf "Z%d" k in
              if List.mem cand !used then pick (k + 1) else cand
            in
            let f = pick 1 in
            used := f :: !used;
            (d, f))
          r_outputs
      in
      let fresh d = match List.assoc_opt d freshen with Some f -> f | None -> d in
      (* Stream-descriptor substitutions. *)
      let stream_req rv =
        (* r's descriptor for its input rv, in pre-opt position: the
           requirement descriptor pushed by t if any, else t's stream
           descriptor. *)
        let tv = List.assoc rv pairs in
        match List.assoc_opt tv rn.rn_redescs with
        | Some req_d -> req_d
        | None -> Pattern.stream_desc_name tv
      in
      let stream_achieved rv =
        Pattern.stream_desc_name (List.assoc rv pairs)
      in
      let subst_with stream_map d =
        if String.equal d r_op_desc then t_rhs_root_desc
        else
          match
            List.find_opt
              (fun rv -> String.equal d (Pattern.stream_desc_name rv))
              r_vars
          with
          | Some rv -> stream_map rv
          | None -> fresh d
      in
      let sigma_pre = subst_with stream_req in
      let sigma_post = subst_with stream_achieved in
      (* Test substitution: op-descriptor reads must be resolved to an LHS
         descriptor through t's copy chain. *)
      let test_props = props_read_from r_op_desc r.Irule.test in
      let test_reads_op = test_props <> [] in
      let op_src =
        if test_reads_op then resolve_op_desc t t_rhs_root_desc test_props
        else Some t_rhs_root_desc
      in
      match op_src with
      | None ->
        warn ~rule:t.Trule.name ~code:"P104"
          (Printf.sprintf
             "cannot compose %s with %s: the I-rule test reads operator \
              descriptor properties not traceable to the T-rule LHS"
             t.Trule.name r.Irule.name);
        None
      | Some src ->
        let sigma_test d =
          if String.equal d r_op_desc then src else subst_with stream_achieved d
        in
        (* Build the merged rule. *)
        let rhs =
          match r.Irule.rhs with
          | Pattern.Tnode (alg, alg_d, rsubs) ->
            let subs =
              List.map
                (fun rsub ->
                  match rsub with
                  | Pattern.Tvar (rv, rredesc) ->
                    let tv = List.assoc rv pairs in
                    let final =
                      match (rredesc, List.assoc_opt tv rn.rn_redescs) with
                      | Some d, _ -> Some (fresh d)
                      | None, Some req_d -> Some req_d
                      | None, None -> None
                    in
                    Pattern.Tvar (tv, final)
                  | Pattern.Tnode _ -> assert false)
                rsubs
            in
            Pattern.Tnode (alg, fresh alg_d, subs)
          | Pattern.Tvar _ -> assert false
        in
        let test =
          match (t.Trule.test, r.Irule.test) with
          | Action.Const (Prairie_value.Value.Bool true), rt ->
            Action.substitute_desc_expr sigma_test rt
          | tt, Action.Const (Prairie_value.Value.Bool true) -> tt
          | tt, rt ->
            Action.Binop
              (Action.And, tt, Action.substitute_desc_expr sigma_test rt)
        in
        let pre_opt =
          t.Trule.pre_test @ t.Trule.post_test
          @ List.map (Action.substitute_desc sigma_pre) r.Irule.pre_opt
        in
        let post_opt =
          List.map (Action.substitute_desc sigma_post) r.Irule.post_opt
        in
        Some
          (Irule.make
             ~name:(t.Trule.name ^ "+" ^ r.Irule.name)
             ~lhs:t.Trule.lhs ~rhs ~test ~pre_opt ~post_opt ())

(* When composition is disabled (the ablation configuration), a rename
   T-rule that pushes requirements — e.g. the stripped
   [JOIN ==> JOPR(?1:D4, ?2:D5)] — is kept as a trans rule, but Volcano
   trans rules operate on logical expressions and cannot request physical
   properties of streams.  The requirement statements are therefore moved
   into every I-rule of the introduced operator: its inputs become
   re-descriptored and the T-rule's requirement computations are prepended
   to its pre-opt section (with the T-rule's descriptor variables renamed
   into the I-rule's frame). *)
let attach_requirements ~(warn : ?rule:string -> code:string -> string -> unit)
    (rn : rename) (r : Irule.t) : Irule.t option =
  if rn.rn_redescs = [] then Some r
  else
    let t = rn.rn_rule in
    let t_root_desc =
      match t.Trule.rhs with
      | Pattern.Tnode (_, d, _) -> d
      | Pattern.Tvar _ -> assert false
    in
    let r_vars = Pattern.vars r.Irule.lhs in
    if List.length r_vars <> List.length rn.rn_vars then None
    else if Irule.redescriptored_inputs r <> [] then begin
      warn ~rule:t.Trule.name ~code:"P106"
        (Printf.sprintf
           "cannot attach %s's requirements to %s: the I-rule already \
            re-descriptors its inputs"
           t.Trule.name r.Irule.name);
      None
    end
    else
      let pairs = List.combine rn.rn_vars r_vars in
      (* The T-rule's requirement descriptors get fresh names in the
         I-rule's frame to avoid collisions with its own variables. *)
      let used =
        ref (Irule.input_descriptors r @ Irule.output_descriptors r)
      in
      let freshened =
        List.map
          (fun (tv, d) ->
            let rec pick k =
              let cand = Printf.sprintf "Q%d" k in
              if List.mem cand !used then pick (k + 1) else cand
            in
            let f = pick 1 in
            used := f :: !used;
            (tv, d, f))
          rn.rn_redescs
      in
      let fresh_of d =
        List.find_map
          (fun (_, old, f) -> if String.equal old d then Some f else None)
          freshened
      in
      let redescs_fresh = List.map (fun (tv, _, f) -> (tv, f)) freshened in
      let redesc_names = List.map snd rn.rn_redescs in
      let t_lhs_desc =
        match t.Trule.lhs with
        | Pattern.Pop (_, d, _) -> d
        | Pattern.Pvar _ -> assert false
      in
      (* Both the T-rule's LHS root descriptor and its RHS root descriptor
         denote the same stream content in the I-rule's frame (the rename
         rule copies one into the other), so both map to the I-rule's
         operator descriptor. *)
      let sigma d =
        match fresh_of d with
        | Some f -> f
        | None ->
          if String.equal d t_root_desc || String.equal d t_lhs_desc then
            Irule.operator_descriptor r
          else (
            match
              List.find_opt
                (fun (tv, _) -> String.equal d (Pattern.stream_desc_name tv))
                pairs
            with
            | Some (_, rv) -> Pattern.stream_desc_name rv
            | None -> d)
      in
      let req_stmts =
        List.filter
          (fun s -> List.mem (Action.assigned_descriptor s) redesc_names)
          (t.Trule.pre_test @ t.Trule.post_test)
      in
      let rhs =
        match r.Irule.rhs with
        | Pattern.Tnode (alg, alg_d, rsubs) ->
          Pattern.Tnode
            ( alg,
              alg_d,
              List.map
                (function
                  | Pattern.Tvar (rv, None) ->
                    let tv =
                      fst (List.find (fun (_, rv') -> rv' = rv) pairs)
                    in
                    Pattern.Tvar (rv, List.assoc_opt tv redescs_fresh)
                  | sub -> sub)
                rsubs )
        | Pattern.Tvar _ -> assert false
      in
      Some
        {
          r with
          Irule.rhs;
          Irule.pre_opt =
            List.map (Action.substitute_desc sigma) req_stmts @ r.Irule.pre_opt;
        }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let merge ?(compose = true) (ruleset : Prairie.Ruleset.t) =
  let warnings = ref [] in
  let warn ?rule ~code m =
    warnings := Diagnostic.warning ?rule ~code m :: !warnings
  in
  let infos = Enforcers.detect ruleset in
  let is_enf op = Enforcers.is_enforcer_operator infos op in
  (* 1. Drop the enforcer rules from the I-rule list. *)
  let enforcer_rule_names =
    List.concat_map
      (fun (i : Enforcers.info) ->
        i.Enforcers.null_rule.Irule.name
        :: List.map (fun (r : Irule.t) -> r.Irule.name) i.Enforcers.algorithm_rules)
      infos
  in
  let irules =
    List.filter
      (fun (r : Irule.t) -> not (List.mem r.Irule.name enforcer_rule_names))
      ruleset.Prairie.Ruleset.irules
  in
  (* 2. Strip enforcer-operators from T-rules. *)
  let trules =
    List.map
      (fun (t : Trule.t) ->
        (* stripping warnings carry the T-rule they fired in *)
        let warn ~code m = warn ~rule:t.Trule.name ~code m in
        {
          t with
          Trule.lhs = strip_pat ~is_enf ~warn t.Trule.lhs;
          Trule.rhs = strip_tmpl ~is_enf ~warn ~root:true t.Trule.rhs;
        })
      ruleset.Prairie.Ruleset.trules
  in
  (* 3. Composition of rename rules with the introduced operator's
        I-rules. *)
  let composed = ref [] in
  let dropped_ops = ref (List.map (fun i -> i.Enforcers.operator) infos) in
  let trules, irules =
    if not compose then
      (* keep the rename rules, but their stream requirements must still
         move into the introduced operators' I-rules — Volcano cannot
         express them on trans rules *)
      let irules =
        List.fold_left
          (fun irs (t : Trule.t) ->
            match rename_candidate t with
            | Some rn when rn.rn_redescs <> [] ->
              List.map
                (fun (r : Irule.t) ->
                  if String.equal (Irule.operator r) rn.rn_to then
                    match attach_requirements ~warn rn r with
                    | Some r' -> r'
                    | None -> r
                  else r)
                irs
            | Some _ | None -> irs)
          irules trules
      in
      (trules, irules)
    else
      List.fold_left
        (fun (ts, irs) (t : Trule.t) ->
          match rename_candidate t with
          | None -> (ts @ [ t ], irs)
          | Some rn ->
            if String.equal rn.rn_from rn.rn_to then begin
              (* pure idempotence: JOIN ==> JOIN; drop the rule *)
              if rn.rn_redescs <> [] then
                warn ~rule:t.Trule.name ~code:"P105"
                  (Printf.sprintf
                     "rule %s renames %s to itself but pushes requirements; \
                      dropping it anyway"
                     t.Trule.name rn.rn_from);
              (ts, irs)
            end
            else
              let introduced_elsewhere =
                List.exists
                  (fun (t' : Trule.t) ->
                    (not (String.equal t'.Trule.name t.Trule.name))
                    && List.mem rn.rn_to (trule_ops t'))
                  trules
              in
              if introduced_elsewhere then (ts @ [ t ], irs)
              else
                let to_compose, others =
                  List.partition
                    (fun (r : Irule.t) ->
                      String.equal (Irule.operator r) rn.rn_to)
                    irs
                in
                if to_compose = [] then (ts @ [ t ], irs)
                else
                  let merged_rules =
                    List.filter_map
                      (fun r ->
                        match compose_rules ~warn rn r with
                        | Some m ->
                          composed := (t.Trule.name, r.Irule.name) :: !composed;
                          Some m
                        | None -> None)
                      to_compose
                  in
                  if List.length merged_rules <> List.length to_compose then
                    (* partial failure: keep everything unmerged *)
                    (ts @ [ t ], irs)
                  else begin
                    dropped_ops := rn.rn_to :: !dropped_ops;
                    (ts, others @ merged_rules)
                  end)
        ([], irules) trules
  in
  {
    source = ruleset;
    enforcer_infos = infos;
    trans_trules = trules;
    impl_irules = irules;
    dropped_operators = List.rev !dropped_ops;
    composed = List.rev !composed;
    warnings = Diagnostic.normalize !warnings;
  }

let trans_rule_count r = List.length r.trans_trules
let impl_rule_count r = List.length r.impl_irules

let enforcer_count r =
  List.fold_left
    (fun n (i : Enforcers.info) -> n + List.length i.Enforcers.algorithm_rules)
    0 r.enforcer_infos

let pp ppf r =
  Format.fprintf ppf
    "@[<v>merge: %d T-rules -> %d trans_rules; %d I-rules -> %d impl_rules + \
     %d enforcers"
    (Prairie.Ruleset.trule_count r.source)
    (trans_rule_count r)
    (Prairie.Ruleset.irule_count r.source)
    (impl_rule_count r) (enforcer_count r);
  List.iter
    (fun i -> Format.fprintf ppf "@,%a" Enforcers.pp i)
    r.enforcer_infos;
  List.iter
    (fun (t, i) -> Format.fprintf ppf "@,composed %s with %s" t i)
    r.composed;
  if r.dropped_operators <> [] then
    Format.fprintf ppf "@,operators dropped: %s"
      (String.concat ", " r.dropped_operators);
  List.iter (fun w -> Format.fprintf ppf "@,%a" Diagnostic.pp w) r.warnings;
  Format.fprintf ppf "@]"
