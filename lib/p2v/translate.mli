(** The P2V code generator: executable Volcano rules from Prairie rules.

    Where the paper's pre-processor emits C code for Volcano's [cond_code],
    [appl_code], ["do_any_good"] and ["derive_phy_prop"] functions (§3.2,
    Table 4), this module closes the interpreted Prairie statement lists
    over the rule's descriptor environment, producing the closures the
    {!Prairie_volcano.Search} engine calls.  The other two Volcano helper
    functions (["cost"], ["get_input_pv"]) are subsumed — the paper notes
    they are short-circuited by the per-rule property transformations. *)

type mode =
  [ `Compiled
    (** stage each rule's statement lists into closures once, at
        translation time — the default, and the analog of the paper's P2V
        emitting C code *)
  | `Interpreted
    (** re-interpret the statement ASTs on every rule invocation — the
        [ablation-codegen] configuration *)
  ]

type t = {
  merge : Merge.result;
  classification : Classify.classification;
  volcano : Prairie_volcano.Rule.ruleset;
  dead_trans : string list;
      (** T-rules whose test constant-folds to [FALSE], dropped before
          code generation (flagged P301 by {!Prairie_analysis}); the
          Volcano rule set never sees them, so indexed and un-indexed
          search agree exactly *)
}

val translate : ?compose:bool -> ?mode:mode -> Prairie.Ruleset.t -> t
(** Run the full pipeline: enforcer detection → rule merging (unless
    [compose:false]) → property classification → code generation. *)

val prepare_query : t -> Prairie.Expr.t -> Prairie.Expr.t * Prairie.Descriptor.t
(** Enforcer-operators do not exist on the Volcano side, so a query tree
    that mentions one (e.g. a root SORT requesting an output order) is
    rewritten: the chain of enforcer-operators at the root is deleted and
    their enforced properties become the required physical properties of
    the optimization.  Enforcer-operators in interior positions are
    likewise deleted (their requirement is re-established by enforcers
    during search, if needed for the plan to be optimal). *)

(** {1 Pieces, exposed for tests} *)

val trans_of_trule :
  ?mode:mode ->
  Prairie.Helper_env.t ->
  Prairie.Trule.t ->
  Prairie_volcano.Rule.trans_rule

val impl_of_irule :
  ?mode:mode ->
  Prairie.Helper_env.t ->
  physical:string list ->
  Prairie.Irule.t ->
  Prairie_volcano.Rule.impl_rule

val enforcer_of_irule :
  ?mode:mode ->
  Prairie.Helper_env.t ->
  enforced:string list ->
  Prairie.Irule.t ->
  Prairie_volcano.Rule.enforcer
