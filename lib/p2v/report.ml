module Trule = Prairie.Trule
module Irule = Prairie.Irule

type t = {
  ruleset_name : string;
  prairie_trules : int;
  prairie_irules : int;
  volcano_trans : int;
  volcano_impl : int;
  volcano_enforcers : int;
  enforcer_operators : string list;
  composed_pairs : (string * string) list;
  cost_properties : string list;
  physical_properties : string list;
  argument_properties : string list;
  prairie_spec_size : int;
  volcano_spec_size : int;
  warnings : Prairie.Diagnostic.t list;
}

let stmts_of_trule (r : Trule.t) =
  List.length r.Trule.pre_test + List.length r.Trule.post_test + 1

let stmts_of_irule (r : Irule.t) =
  List.length r.Irule.pre_opt + List.length r.Irule.post_opt + 1

let of_translation (tr : Translate.t) =
  let m = tr.Translate.merge in
  let src = m.Merge.source in
  let volcano_spec_size =
    (* rules + statements + the four support functions per impl_rule and
       two code blocks per trans_rule that a hand-coded Volcano rule set
       must supply (paper Table 4) *)
    List.fold_left (fun n r -> n + stmts_of_trule r + 2) 0 m.Merge.trans_trules
    + List.fold_left (fun n r -> n + stmts_of_irule r + 4) 0 m.Merge.impl_irules
    + (4 * Merge.enforcer_count m)
  in
  {
    ruleset_name = src.Prairie.Ruleset.name;
    prairie_trules = Prairie.Ruleset.trule_count src;
    prairie_irules = Prairie.Ruleset.irule_count src;
    volcano_trans = Merge.trans_rule_count m;
    volcano_impl = Merge.impl_rule_count m;
    volcano_enforcers = Merge.enforcer_count m;
    enforcer_operators =
      List.map (fun (i : Enforcers.info) -> i.Enforcers.operator)
        m.Merge.enforcer_infos;
    composed_pairs = m.Merge.composed;
    cost_properties = tr.Translate.classification.Classify.cost;
    physical_properties = tr.Translate.classification.Classify.physical;
    argument_properties = tr.Translate.classification.Classify.argument;
    prairie_spec_size = Prairie.Ruleset.spec_size src;
    volcano_spec_size;
    warnings = m.Merge.warnings;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>P2V report for rule set %S" t.ruleset_name;
  Format.fprintf ppf "@,Prairie:  %d T-rules, %d I-rules" t.prairie_trules
    t.prairie_irules;
  Format.fprintf ppf "@,Volcano:  %d trans_rules, %d impl_rules, %d enforcers"
    t.volcano_trans t.volcano_impl t.volcano_enforcers;
  Format.fprintf ppf "@,enforcer-operators: %s"
    (match t.enforcer_operators with
    | [] -> "(none)"
    | ops -> String.concat ", " ops);
  List.iter
    (fun (a, b) -> Format.fprintf ppf "@,composed: %s + %s" a b)
    t.composed_pairs;
  Format.fprintf ppf "@,cost properties:     %s"
    (String.concat ", " t.cost_properties);
  Format.fprintf ppf "@,physical properties: %s"
    (String.concat ", " t.physical_properties);
  Format.fprintf ppf "@,argument properties: %s"
    (String.concat ", " t.argument_properties);
  Format.fprintf ppf "@,spec size (Prairie): %d units" t.prairie_spec_size;
  Format.fprintf ppf "@,spec size (hand-coded Volcano equivalent): %d units"
    t.volcano_spec_size;
  List.iter (fun w -> Format.fprintf ppf "@,%a" Prairie.Diagnostic.pp w) t.warnings;
  Format.fprintf ppf "@]"
