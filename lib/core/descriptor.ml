module Value = Prairie_value.Value
module String_map = Map.Make (String)

type t = Value.t String_map.t

let empty = String_map.empty
let is_empty = String_map.is_empty

let get d p =
  match String_map.find_opt p d with Some v -> v | None -> Value.Null

let find d p =
  match String_map.find_opt p d with
  | Some Value.Null | None -> None
  | Some v -> Some v

(* "No constraint" values are normalized to absence so that descriptors
   reached along different rewriting paths compare equal: an unset
   [tuple_order] reads back as DONT_CARE and an unset predicate as [True]
   (see the typed accessors), so the representations are interchangeable. *)
let set d p v =
  match v with
  | Value.Null | Value.Order Prairie_value.Order.Any
  | Value.Pred Prairie_value.Predicate.True ->
    String_map.remove p d
  | _ -> String_map.add p v d

let remove d p = String_map.remove p d
let mem d p = match find d p with Some _ -> true | None -> false
let of_list bindings = List.fold_left (fun d (p, v) -> set d p v) empty bindings
let to_list d = String_map.bindings d
let merge ~base ~overrides = String_map.union (fun _ _ v -> Some v) base overrides

let restrict d props =
  String_map.filter (fun p _ -> List.mem p props) d

let without d props =
  String_map.filter (fun p _ -> not (List.mem p props)) d

let equal = String_map.equal Value.equal
let compare = String_map.compare Value.compare
let hash d = Hashtbl.hash (to_list d)

(* Injective serialization for fingerprinting.  Strings are length-prefixed
   so concatenation cannot introduce collisions; floats are rendered as hex
   ("%h") so distinct bit patterns stay distinct where "%g" would round. *)
let add_fingerprint buf d =
  let tagged c s =
    Buffer.add_char buf c;
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  let rec add_value = function
    | Value.Null -> Buffer.add_char buf 'N'
    | Value.Bool b -> Buffer.add_char buf (if b then 'T' else 'F')
    | Value.Int i ->
      Buffer.add_char buf 'I';
      Buffer.add_string buf (string_of_int i)
    | Value.Float f ->
      Buffer.add_char buf 'D';
      Buffer.add_string buf (Printf.sprintf "%h" f)
    | Value.Str s -> tagged 'S' s
    | Value.Order o -> tagged 'O' (Prairie_value.Order.to_string o)
    | Value.Pred p -> tagged 'P' (Prairie_value.Predicate.to_string p)
    | Value.Attrs attrs ->
      tagged 'A'
        (String.concat "\x01" (List.map Prairie_value.Attribute.to_string attrs))
    | Value.List vs ->
      Buffer.add_char buf 'L';
      Buffer.add_string buf (string_of_int (List.length vs));
      Buffer.add_char buf ':';
      List.iter add_value vs
  in
  Buffer.add_char buf '{';
  String_map.iter
    (fun p v ->
      tagged 'k' p;
      Buffer.add_char buf '=';
      add_value v;
      Buffer.add_char buf ';')
    d;
  Buffer.add_char buf '}'

let fingerprint d =
  let buf = Buffer.create 64 in
  add_fingerprint buf d;
  Buffer.contents buf
let get_int d p = Value.to_int (get d p)
let get_float d p = Value.to_float (get d p)
let get_order d p = Value.to_order (get d p)
let get_pred d p = Value.to_pred (get d p)
let get_attrs d p = Value.to_attrs (get d p)

let cost d = match find d "cost" with Some v -> Value.to_float v | None -> 0.0
let set_cost d c = set d "cost" (Value.Float c)

let pp ppf d =
  Format.fprintf ppf "@[<hv 1>{";
  List.iteri
    (fun i (p, v) ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%s = %a" p Value.pp v)
    (to_list d);
  Format.fprintf ppf "}@]"
