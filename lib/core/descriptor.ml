module Value = Prairie_value.Value
module String_map = Map.Make (String)
module String_set = Set.Make (String)

(* Descriptors are hash-consed: every distinct binding map is represented by
   at most one live record per domain, carrying a precomputed
   order-independent hash, a pool-unique id, and a lazily cached canonical
   fingerprint.  [equal]/[hash] therefore cost O(1) on the memo hot paths
   (the pointer-equality fast path covers every same-domain comparison)
   instead of re-serializing the map per probe.

   The pool is generation-scoped and domain-local.  Generation-scoped: a
   strong hash table capped at [pool_capacity] entries that is reset
   wholesale when full, rather than a weak set — weak arrays make every
   intern pay GC bookkeeping (sweeping shows up prominently in optimizer
   profiles), while a bounded strong table costs one probe.  Resetting a
   generation never invalidates live descriptors: the pool is purely a
   dedup cache, and [equal] falls back to structural comparison for the
   (rare) pairs interned in different generations.  Domain-local: the plan
   service optimizes on several domains at once, and a shared pool would
   need a lock on every construction; descriptors that cross domains hit
   the same structural fallback. *)

type t = {
  id : int;  (** unique within the interning domain's pool *)
  hash : int;  (** order-independent combination of binding hashes *)
  map : Value.t String_map.t;
  mutable fp : string option;  (** cached canonical serialization *)
}

(* XOR-combined per-binding hashes: order-independent, so [set]/[remove]
   update it incrementally without refolding the map.

   [hash_param] with a deep meaningful-node budget: the default budget (10)
   stops inside long attribute lists, making every join descriptor's "attrs"
   binding hash alike and defeating the hash pre-checks below.  The deeper
   walk is paid once per binding change, not per comparison.

   Equal values hash equal even at the float edge cases: [caml_hash]
   normalizes -0. to 0. and all NaNs to one payload, exactly the
   identifications [Float.equal]-based value equality makes.  That makes a
   hash mismatch a sound proof of inequality. *)
let binding_hash p v = Hashtbl.hash_param 128 256 (p, v)

let empty_hash = 0x6b84c5

let map_hash m =
  String_map.fold (fun p v h -> h lxor binding_hash p v) m empty_hash

module Pool = Hashtbl.Make (struct
  type nonrec t = t

  (* The cached-hash pre-check settles bucket mismatches with one int
     compare; without it every probe walks two binding maps (and their
     attribute lists) until the first difference, which dominated optimizer
     profiles.  Sound because equal maps hash equal (see [binding_hash]). *)
  let equal a b =
    a == b || (a.hash = b.hash && String_map.equal Value.equal a.map b.map)

  let hash (d : t) = d.hash
end)

type pool_stats = { size : int; hits : int; misses : int }

type pool = {
  set : t Pool.t;
  mutable next_id : int;
  mutable hits : int;
  mutable misses : int;
}

(* Generation cap: large enough that a single optimization run never rolls
   over (the biggest bench workloads intern a few tens of thousands of
   distinct descriptors), small enough to bound a long-lived service
   domain's memory. *)
let pool_capacity = 1 lsl 17

let pool_key =
  Domain.DLS.new_key (fun () ->
      { set = Pool.create 1024; next_id = 0; hits = 0; misses = 0 })

let intern ?hash map =
  let h = match hash with Some h -> h | None -> map_hash map in
  let pool = Domain.DLS.get pool_key in
  let candidate = { id = pool.next_id; hash = h; map; fp = None } in
  match Pool.find_opt pool.set candidate with
  | Some r ->
    pool.hits <- pool.hits + 1;
    r
  | None ->
    if Pool.length pool.set >= pool_capacity then Pool.reset pool.set;
    Pool.add pool.set candidate candidate;
    pool.next_id <- pool.next_id + 1;
    pool.misses <- pool.misses + 1;
    candidate

let pool_stats () =
  let p = Domain.DLS.get pool_key in
  { size = Pool.length p.set; hits = p.hits; misses = p.misses }

let id d = d.id
let empty = intern String_map.empty
let is_empty d = String_map.is_empty d.map

let get d p =
  match String_map.find_opt p d.map with Some v -> v | None -> Value.Null

let find d p =
  match String_map.find_opt p d.map with
  | Some Value.Null | None -> None
  | Some v -> Some v

(* "No constraint" values are normalized to absence so that descriptors
   reached along different rewriting paths compare equal: an unset
   [tuple_order] reads back as DONT_CARE and an unset predicate as [True]
   (see the typed accessors), so the representations are interchangeable. *)
let is_no_constraint = function
  | Value.Null | Value.Order Prairie_value.Order.Any
  | Value.Pred Prairie_value.Predicate.True ->
    true
  | _ -> false

let set d p v =
  if is_no_constraint v then
    match String_map.find_opt p d.map with
    | None -> d
    | Some old ->
      intern
        ~hash:(d.hash lxor binding_hash p old)
        (String_map.remove p d.map)
  else
    match String_map.find_opt p d.map with
    | Some old ->
      intern
        ~hash:(d.hash lxor binding_hash p old lxor binding_hash p v)
        (String_map.add p v d.map)
    | None ->
      intern ~hash:(d.hash lxor binding_hash p v) (String_map.add p v d.map)

let remove d p =
  match String_map.find_opt p d.map with
  | None -> d
  | Some old ->
    intern ~hash:(d.hash lxor binding_hash p old) (String_map.remove p d.map)

let mem d p = match find d p with Some _ -> true | None -> false

let of_list bindings =
  intern
    (List.fold_left
       (fun m (p, v) ->
         if is_no_constraint v then String_map.remove p m
         else String_map.add p v m)
       String_map.empty bindings)

let to_list d = String_map.bindings d.map

let merge ~base ~overrides =
  if String_map.is_empty overrides.map then base
  else if String_map.is_empty base.map then overrides
  else intern (String_map.union (fun _ _ v -> Some v) base.map overrides.map)

(* [String_map.filter] preserves physical identity when nothing is dropped,
   so the common "already restricted" case returns [d] without touching the
   pool. *)
let restrict_set d props =
  let m = String_map.filter (fun p _ -> String_set.mem p props) d.map in
  if m == d.map then d else intern m

let without_set d props =
  let m = String_map.filter (fun p _ -> not (String_set.mem p props)) d.map in
  if m == d.map then d else intern m

let restrict d props = restrict_set d (String_set.of_list props)
let without d props = without_set d (String_set.of_list props)

let equal a b =
  a == b || (a.hash = b.hash && String_map.equal Value.equal a.map b.map)

let compare a b = if a == b then 0 else String_map.compare Value.compare a.map b.map
let hash d = d.hash

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal a b =
    a == b || (a.hash = b.hash && String_map.equal Value.equal a.map b.map)

  let hash (d : t) = d.hash
end)

(* Injective serialization for fingerprinting.  Strings are length-prefixed
   so concatenation cannot introduce collisions; floats are rendered as hex
   ("%h") so distinct bit patterns stay distinct where "%g" would round. *)
let add_map_fingerprint buf m =
  let tagged c s =
    Buffer.add_char buf c;
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  let rec add_value = function
    | Value.Null -> Buffer.add_char buf 'N'
    | Value.Bool b -> Buffer.add_char buf (if b then 'T' else 'F')
    | Value.Int i ->
      Buffer.add_char buf 'I';
      Buffer.add_string buf (string_of_int i)
    | Value.Float f ->
      Buffer.add_char buf 'D';
      Buffer.add_string buf (Printf.sprintf "%h" f)
    | Value.Str s -> tagged 'S' s
    | Value.Order o -> tagged 'O' (Prairie_value.Order.to_string o)
    | Value.Pred p -> tagged 'P' (Prairie_value.Predicate.to_string p)
    | Value.Attrs attrs ->
      tagged 'A'
        (String.concat "\x01" (List.map Prairie_value.Attribute.to_string attrs))
    | Value.List vs ->
      Buffer.add_char buf 'L';
      Buffer.add_string buf (string_of_int (List.length vs));
      Buffer.add_char buf ':';
      List.iter add_value vs
  in
  Buffer.add_char buf '{';
  String_map.iter
    (fun p v ->
      tagged 'k' p;
      Buffer.add_char buf '=';
      add_value v;
      Buffer.add_char buf ';')
    m;
  Buffer.add_char buf '}'

let fingerprint d =
  match d.fp with
  | Some s -> s
  | None ->
    let buf = Buffer.create 64 in
    add_map_fingerprint buf d.map;
    let s = Buffer.contents buf in
    (* A benign race when two domains fingerprint a shared descriptor:
       both compute the same string and the one-word write is atomic. *)
    d.fp <- Some s;
    s

let add_fingerprint buf d = Buffer.add_string buf (fingerprint d)
let get_int d p = Value.to_int (get d p)
let get_float d p = Value.to_float (get d p)
let get_order d p = Value.to_order (get d p)
let get_pred d p = Value.to_pred (get d p)
let get_attrs d p = Value.to_attrs (get d p)

let cost d = match find d "cost" with Some v -> Value.to_float v | None -> 0.0
let set_cost d c = set d "cost" (Value.Float c)

let pp ppf d =
  Format.fprintf ppf "@[<hv 1>{";
  List.iteri
    (fun i (p, v) ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%s = %a" p Value.pp v)
    (to_list d);
  Format.fprintf ppf "}@]"
