(** Structured diagnostics for static analysis of rule sets.

    Every finding — from the {!module:Prairie_lint} analyzer, the P2V
    pre-processor or elaboration — is a value with a stable code
    ([P001]…), a severity, an optional rule name and source span, a
    message and an optional fix hint.  Stable codes let tooling (CI
    gates, editors, the [prairiec lint --format json] report) key on the
    finding kind rather than on message text. *)

type severity =
  | Error  (** the rule set is broken; refuse to load it *)
  | Warning  (** probably a bug; [--max-warnings] can gate on these *)
  | Info  (** noteworthy but expected (e.g. pragma-downgraded findings) *)

type span = {
  line : int;  (** 1-based *)
  column : int;  (** 1-based *)
}

type t = {
  code : string;  (** stable code, e.g. ["P005"] *)
  severity : severity;
  rule : string option;  (** rule or declaration the finding is about *)
  span : span option;  (** source position, when known *)
  message : string;
  hint : string option;  (** optional suggestion for fixing the finding *)
  related : (string * span) list;
      (** other rules the finding involves — e.g. the subsuming rule of a
          P320 pair — each with its source position *)
}

val make :
  ?severity:severity ->
  ?rule:string ->
  ?span:span ->
  ?hint:string ->
  ?related:(string * span) list ->
  code:string ->
  string ->
  t

val error :
  ?rule:string ->
  ?span:span ->
  ?hint:string ->
  ?related:(string * span) list ->
  code:string ->
  string ->
  t

val warning :
  ?rule:string ->
  ?span:span ->
  ?hint:string ->
  ?related:(string * span) list ->
  code:string ->
  string ->
  t

val info :
  ?rule:string ->
  ?span:span ->
  ?hint:string ->
  ?related:(string * span) list ->
  code:string ->
  string ->
  t

val is_error : t -> bool
val is_warning : t -> bool
val errors : t list -> t list
val warnings : t list -> t list

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Total order: span, then severity, code, rule, message — the stable
    report order. *)

val normalize : t list -> t list
(** Deduplicate and sort into the stable report order. *)

val summary : t list -> int * int * int
(** [(errors, warnings, infos)] counts. *)

type catalogue = (string * severity * string) list
(** A checker's code table: [(code, default severity, description)].  The
    P-code namespace is shared across checkers — P0xx are static lint
    findings, P2xx semantic verification findings — so tooling can treat
    [prairiec lint] and [prairiec verify] reports uniformly. *)

val catalogue_find : catalogue -> string -> (severity * string) option

val catalogue_codes : catalogue -> string list

val to_string : t -> string
(** ["error[P005] 12:3 (join_commute): ..."] with an optional hint line. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One JSON object; fields [code], [severity], [message] always present,
    [rule], [line]/[column], [hint], [related] when known. *)
