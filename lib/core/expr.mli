(** Operator trees, expressions and access plans.

    An operator tree is "a rooted tree whose non-leaf nodes are database
    operations (operators or algorithms) and whose leaf nodes are stored
    files" (paper §2.1).  A tree whose interior nodes are all abstract
    operators is an {e operator tree} (logical expression); one whose
    interior nodes are all algorithms is an {e access plan} (physical
    expression). *)

type node_kind =
  | Operator  (** abstract operator, e.g. JOIN *)
  | Algorithm  (** concrete algorithm, e.g. Nested_loops *)

type t =
  | Stored of string * Descriptor.t
      (** leaf: a stored file (relation or class) and its annotations *)
  | Node of node_kind * string * Descriptor.t * t list
      (** interior node: database operation, its descriptor and its essential
          parameters (the stream/file inputs) *)

val stored : ?desc:Descriptor.t -> string -> t
val operator : string -> Descriptor.t -> t list -> t
val algorithm : string -> Descriptor.t -> t list -> t

val descriptor : t -> Descriptor.t
(** The root node's descriptor. *)

val with_descriptor : t -> Descriptor.t -> t
(** Replace the root node's descriptor. *)

val map_descriptor : t -> (Descriptor.t -> Descriptor.t) -> t
(** Update the root node's descriptor in place (functionally). *)

val inputs : t -> t list

val label : t -> string
(** Operation name for interior nodes, file name for leaves. *)

val is_operator_tree : t -> bool
(** All interior nodes are abstract operators. *)

val is_access_plan : t -> bool
(** All interior nodes are algorithms (paper §2.1, "Access Plans"). *)

val size : t -> int
(** Number of nodes. *)

val operators_used : t -> string list
(** Distinct interior-node operation names, sorted. *)

val stored_files : t -> string list
(** Leaf file names in left-to-right order (with duplicates). *)

val cost : t -> float
(** Cost annotation of the root descriptor. *)

val equal : t -> t -> bool
(** Structural equality including descriptors. *)

val equal_shape : t -> t -> bool
(** Structural equality ignoring descriptors — used to deduplicate logical
    forms that differ only in derived annotations. *)

val compare : t -> t -> int

val hash : t -> int

val fingerprint : ?required:Descriptor.t -> t -> string
(** Canonical query fingerprint: the hex digest of an injective
    serialization of the whole tree (labels, node kinds and descriptors)
    together with the required physical-property descriptor of the request
    (default: empty).  Two requests collide exactly when the trees satisfy
    {!equal} and the requirements satisfy {!Descriptor.equal}, so the
    fingerprint is a sound cache key for plan services: equal fingerprints
    mean semantically identical optimization problems. *)

val pp : Format.formatter -> t -> unit
(** Compact one-line rendering, e.g. [SORT(JOIN(RET(R1), RET(R2)))]. *)

val pp_verbose : Format.formatter -> t -> unit
(** Multi-line tree rendering including descriptors. *)

val to_string : t -> string
