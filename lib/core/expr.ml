type node_kind =
  | Operator
  | Algorithm

type t =
  | Stored of string * Descriptor.t
  | Node of node_kind * string * Descriptor.t * t list

let stored ?(desc = Descriptor.empty) name = Stored (name, desc)
let operator name desc inputs = Node (Operator, name, desc, inputs)
let algorithm name desc inputs = Node (Algorithm, name, desc, inputs)

let descriptor = function
  | Stored (_, d) -> d
  | Node (_, _, d, _) -> d

let with_descriptor t d =
  match t with
  | Stored (name, _) -> Stored (name, d)
  | Node (kind, name, _, inputs) -> Node (kind, name, d, inputs)

let map_descriptor t f = with_descriptor t (f (descriptor t))
let inputs = function Stored _ -> [] | Node (_, _, _, xs) -> xs

let label = function
  | Stored (name, _) -> name
  | Node (_, name, _, _) -> name

let rec all_interior p = function
  | Stored _ -> true
  | Node (kind, _, _, xs) -> p kind && List.for_all (all_interior p) xs

let is_operator_tree t = all_interior (fun k -> k = Operator) t
let is_access_plan t = all_interior (fun k -> k = Algorithm) t

let rec size = function
  | Stored _ -> 1
  | Node (_, _, _, xs) -> List.fold_left (fun n x -> n + size x) 1 xs

let operators_used t =
  let rec go acc = function
    | Stored _ -> acc
    | Node (_, name, _, xs) ->
      let acc = if List.mem name acc then acc else name :: acc in
      List.fold_left go acc xs
  in
  List.sort String.compare (go [] t)

let stored_files t =
  let rec go acc = function
    | Stored (name, _) -> name :: acc
    | Node (_, _, _, xs) -> List.fold_left go acc xs
  in
  List.rev (go [] t)

let cost t = Descriptor.cost (descriptor t)

let rec equal a b =
  match (a, b) with
  | Stored (n1, d1), Stored (n2, d2) -> String.equal n1 n2 && Descriptor.equal d1 d2
  | Node (k1, n1, d1, xs1), Node (k2, n2, d2, xs2) ->
    k1 = k2 && String.equal n1 n2 && Descriptor.equal d1 d2
    && List.equal equal xs1 xs2
  | Stored _, Node _ | Node _, Stored _ -> false

let rec equal_shape a b =
  match (a, b) with
  | Stored (n1, _), Stored (n2, _) -> String.equal n1 n2
  | Node (k1, n1, _, xs1), Node (k2, n2, _, xs2) ->
    k1 = k2 && String.equal n1 n2 && List.equal equal_shape xs1 xs2
  | Stored _, Node _ | Node _, Stored _ -> false

let rec compare a b =
  match (a, b) with
  | Stored (n1, d1), Stored (n2, d2) -> (
    match String.compare n1 n2 with
    | 0 -> Descriptor.compare d1 d2
    | c -> c)
  | Stored _, Node _ -> -1
  | Node _, Stored _ -> 1
  | Node (k1, n1, d1, xs1), Node (k2, n2, d2, xs2) -> (
    match Stdlib.compare k1 k2 with
    | 0 -> (
      match String.compare n1 n2 with
      | 0 -> (
        match List.compare compare xs1 xs2 with
        | 0 -> Descriptor.compare d1 d2
        | c -> c)
      | c -> c)
    | c -> c)

let rec hash = function
  | Stored (n, d) -> Hashtbl.hash (0, n, Descriptor.hash d)
  | Node (k, n, d, xs) ->
    Hashtbl.hash (1, k, n, Descriptor.hash d, List.map hash xs)

let fingerprint ?(required = Descriptor.empty) t =
  let buf = Buffer.create 256 in
  let name n =
    Buffer.add_string buf (string_of_int (String.length n));
    Buffer.add_char buf ':';
    Buffer.add_string buf n
  in
  let rec go = function
    | Stored (n, d) ->
      Buffer.add_char buf 's';
      name n;
      Descriptor.add_fingerprint buf d
    | Node (kind, n, d, xs) ->
      Buffer.add_char buf (match kind with Operator -> 'o' | Algorithm -> 'a');
      name n;
      Descriptor.add_fingerprint buf d;
      Buffer.add_char buf '(';
      List.iter go xs;
      Buffer.add_char buf ')'
  in
  go t;
  Buffer.add_char buf '|';
  Descriptor.add_fingerprint buf required;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let rec pp ppf = function
  | Stored (name, _) -> Format.pp_print_string ppf name
  | Node (_, name, _, xs) ->
    Format.fprintf ppf "%s(" name;
    List.iteri
      (fun i x ->
        if i > 0 then Format.fprintf ppf ", ";
        pp ppf x)
      xs;
    Format.fprintf ppf ")"

let rec pp_verbose ppf = function
  | Stored (name, d) -> Format.fprintf ppf "@[<v 2>%s : %a@]" name Descriptor.pp d
  | Node (kind, name, d, xs) ->
    let tag = match kind with Operator -> "op" | Algorithm -> "alg" in
    Format.fprintf ppf "@[<v 2>%s[%s] : %a" name tag Descriptor.pp d;
    List.iter (fun x -> Format.fprintf ppf "@,%a" pp_verbose x) xs;
    Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
