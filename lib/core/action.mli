(** Action statements of T-rules and I-rules.

    Rule actions are "a series of assignment statements" whose left-hand
    sides refer to descriptors of output expressions and whose right-hand
    sides may reference any descriptor in the rule and call helper functions
    (paper §2.3).  Keeping actions as data — rather than opaque OCaml
    closures — is what allows the P2V pre-processor to analyze them:
    property classification, enforcer detection and rule merging are all
    dataflow analyses over this AST. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Cmp of Prairie_value.Predicate.comparison

type unop =
  | Not
  | Neg

type expr =
  | Const of Prairie_value.Value.t
  | Desc of string  (** a whole descriptor, e.g. [D3]; legal only as the
                        right-hand side of a whole-descriptor assignment *)
  | Prop of string * string  (** [D3.tuple_order] *)
  | Call of string * expr list  (** helper function call *)
  | Binop of binop * expr * expr
  | Unop of unop * expr

type stmt =
  | Assign_desc of string * expr  (** [D5 = D3;] — whole-descriptor copy *)
  | Assign_prop of string * string * expr  (** [D4.tuple_order = ...;] *)

val tt : expr
(** The constant [TRUE] test. *)

val int : int -> expr
val float : float -> expr
val str : string -> expr
val prop : string -> string -> expr
val call : string -> expr list -> expr

val ( &&& ) : expr -> expr -> expr
val ( ||| ) : expr -> expr -> expr
val ( === ) : expr -> expr -> expr
val ( =/= ) : expr -> expr -> expr

val assigned_descriptor : stmt -> string
(** The descriptor variable a statement writes to. *)

val assigned_property : stmt -> string option
(** [Some p] for property assignments, [None] for whole-descriptor copies. *)

val read_descriptors : expr -> string list
(** Descriptor variables read by an expression (sorted, deduplicated). *)

val stmt_read_descriptors : stmt -> string list

val helpers_used : stmt list -> string list
(** Helper-function names called anywhere in the statements. *)

val fold_const : expr -> Prairie_value.Value.t option
(** Sound constant folding: [Some v] iff the expression evaluates to [v]
    under every binding of descriptors and helper functions.  [And]/[Or]
    short-circuit on a constant absorbing element; comparisons and
    arithmetic fold only when both sides are compatible constants (an
    expression that would raise {!Prairie_value.Value.Type_error} at run
    time yields [None], never a guess).  Used by the whole-rule-set
    analyzer (P301/P302) and by [Translate] to drop provably dead rules. *)

val substitute_desc : (string -> string) -> stmt -> stmt
(** Rename descriptor variables (used by rule merging). *)

val substitute_desc_expr : (string -> string) -> expr -> expr

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_stmts : Format.formatter -> stmt list -> unit
