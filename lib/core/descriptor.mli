(** Descriptors: the uniform per-node annotation lists of Prairie.

    A descriptor is "a list of annotations that describes a node of an
    operator tree; every node has its own descriptor" (paper §2.1).  Unlike
    Volcano, a single structure holds what Volcano splits into
    operator/algorithm arguments, physical properties and cost — the split is
    recovered mechanically by the P2V pre-processor. *)

type t

val empty : t

val is_empty : t -> bool

val get : t -> string -> Prairie_value.Value.t
(** [get d p] is the value of property [p], or [Null] when unset. *)

val find : t -> string -> Prairie_value.Value.t option

val set : t -> string -> Prairie_value.Value.t -> t
(** Functional update.  Setting a "no constraint" value — [Null], the
    DONT_CARE order, or the [True] predicate — removes the binding, so
    descriptors built along different rewriting paths stay structurally
    equal; the typed accessors read absent bindings back as those values. *)

val remove : t -> string -> t

val mem : t -> string -> bool

val of_list : (string * Prairie_value.Value.t) list -> t

val to_list : t -> (string * Prairie_value.Value.t) list
(** Bindings sorted by property name. *)

val merge : base:t -> overrides:t -> t
(** Right-biased union: properties of [overrides] win. *)

val restrict : t -> string list -> t
(** Keep only the named properties. *)

val without : t -> string list -> t
(** Drop the named properties. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val add_fingerprint : Buffer.t -> t -> unit
(** Append an injective canonical serialization of the bindings to a buffer
    (the building block of {!Prairie.Expr.fingerprint}).  Because "no
    constraint" values are normalized to absence (see {!set}), descriptors
    built along different rewriting paths serialize identically exactly when
    they are {!equal}. *)

val fingerprint : t -> string
(** [add_fingerprint] into a fresh buffer.
    [fingerprint a = fingerprint b] iff [equal a b]. *)

(** {1 Typed accessors}

    Convenience readers used throughout rule tests, cost functions and the
    execution engine.  They raise [Prairie_value.Value.Type_error] on
    mismatches. *)

val get_int : t -> string -> int
val get_float : t -> string -> float
val get_order : t -> string -> Prairie_value.Order.t
val get_pred : t -> string -> Prairie_value.Predicate.t
val get_attrs : t -> string -> Prairie_value.Attribute.t list

val cost : t -> float
(** The ["cost"] property, 0 when unset. *)

val set_cost : t -> float -> t

val pp : Format.formatter -> t -> unit
