(** Descriptors: the uniform per-node annotation lists of Prairie.

    A descriptor is "a list of annotations that describes a node of an
    operator tree; every node has its own descriptor" (paper §2.1).  Unlike
    Volcano, a single structure holds what Volcano splits into
    operator/algorithm arguments, physical properties and cost — the split is
    recovered mechanically by the P2V pre-processor.

    Descriptors are hash-consed through a domain-local, generation-scoped
    pool (a bounded strong table, reset wholesale when full): every
    value carries a pool-unique {!id}, a precomputed order-independent
    {!hash}, and a lazily cached {!fingerprint}, so the memo hot paths get
    O(1) hashing and (within a domain) pointer-equality comparisons.
    Observational semantics are unchanged from the uninterned
    representation. *)

type t

val empty : t

val is_empty : t -> bool

val id : t -> int
(** Pool-unique identity of this descriptor, assigned at interning time.
    Unique only within the interning domain — descriptors that cross domains
    (e.g. through the plan cache) may collide on [id], so persistent keys
    must use the descriptor itself (via {!hash}/{!equal} or {!Tbl}), not the
    raw id.  Ids are not stable across runs; never use them for ordering. *)

val get : t -> string -> Prairie_value.Value.t
(** [get d p] is the value of property [p], or [Null] when unset. *)

val find : t -> string -> Prairie_value.Value.t option

val set : t -> string -> Prairie_value.Value.t -> t
(** Functional update.  Setting a "no constraint" value — [Null], the
    DONT_CARE order, or the [True] predicate — removes the binding, so
    descriptors built along different rewriting paths stay structurally
    equal; the typed accessors read absent bindings back as those values. *)

val remove : t -> string -> t

val mem : t -> string -> bool

val of_list : (string * Prairie_value.Value.t) list -> t

val to_list : t -> (string * Prairie_value.Value.t) list
(** Bindings sorted by property name. *)

val merge : base:t -> overrides:t -> t
(** Right-biased union: properties of [overrides] win. *)

val restrict : t -> string list -> t
(** Keep only the named properties. *)

val without : t -> string list -> t
(** Drop the named properties. *)

module String_set : Set.S with type elt = string

val restrict_set : t -> String_set.t -> t
(** {!restrict} against a prebuilt property set — use this when the same
    property list is applied repeatedly (e.g. a rule set's physical
    properties) to avoid rebuilding the set per call. *)

val without_set : t -> String_set.t -> t

val equal : t -> t -> bool
(** Pointer equality first (covers every pair interned by the same
    generation of the same domain's pool), then the cached-hash pre-check,
    then structural comparison of the binding maps.  The fallbacks make
    equality sound for descriptors interned in {e different domains} (or
    different pool generations): two such records are never physically
    equal and may even collide on {!id}, but they compare equal exactly
    when their bindings do. *)

val compare : t -> t -> int
(** Structural comparison (not id-based): deterministic across runs and
    domains. *)

val hash : t -> int
(** O(1): returns the hash precomputed at interning time.  The hash is a
    pure function of the bindings, so equal descriptors hash equal no
    matter which domain interned them. *)

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by descriptor, using the cached hash and the
    pointer-fast-path equality.  This is the right structure for winner
    tables and per-descriptor memo caches.  Safe to share across domains
    (with external synchronization of the table itself): keys interned in
    one domain are found by structurally equal probes interned in another,
    because {!equal}/{!hash} never depend on pool identity. *)

val add_fingerprint : Buffer.t -> t -> unit
(** Append an injective canonical serialization of the bindings to a buffer
    (the building block of {!Prairie.Expr.fingerprint}).  Because "no
    constraint" values are normalized to absence (see {!set}), descriptors
    built along different rewriting paths serialize identically exactly when
    they are {!equal}.  The serialization is computed once per descriptor
    and cached. *)

val fingerprint : t -> string
(** [add_fingerprint] into a fresh buffer, cached after the first call.
    [fingerprint a = fingerprint b] iff [equal a b]. *)

type pool_stats = { size : int; hits : int; misses : int }
(** [size] is the current number of live descriptors in this domain's pool;
    [hits] counts interning requests answered by an existing descriptor,
    [misses] those that created a new one. *)

val pool_stats : unit -> pool_stats
(** Statistics of the calling domain's interning pool. *)

(** {1 Typed accessors}

    Convenience readers used throughout rule tests, cost functions and the
    execution engine.  They raise [Prairie_value.Value.Type_error] on
    mismatches. *)

val get_int : t -> string -> int
val get_float : t -> string -> float
val get_order : t -> string -> Prairie_value.Order.t
val get_pred : t -> string -> Prairie_value.Predicate.t
val get_attrs : t -> string -> Prairie_value.Attribute.t list

val cost : t -> float
(** The ["cost"] property, 0 when unset. *)

val set_cost : t -> float -> t

val pp : Format.formatter -> t -> unit
