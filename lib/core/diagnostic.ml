type severity =
  | Error
  | Warning
  | Info

type span = {
  line : int;
  column : int;
}

type t = {
  code : string;
  severity : severity;
  rule : string option;
  span : span option;
  message : string;
  hint : string option;
  related : (string * span) list;
}

let make ?(severity = Error) ?rule ?span ?hint ?(related = []) ~code message =
  { code; severity; rule; span; message; hint; related }

let error = make ~severity:Error
let warning = make ~severity:Warning
let info = make ~severity:Info
let is_error d = d.severity = Error
let is_warning d = d.severity = Warning

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_span a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> 1 (* spanless diagnostics sort after located ones *)
  | Some _, None -> -1
  | Some x, Some y ->
    let c = Int.compare x.line y.line in
    if c <> 0 then c else Int.compare x.column y.column

(* Stable report order: source position, then severity, code, rule and
   message.  Total, so [List.sort_uniq compare] both orders and dedupes. *)
let compare a b =
  let c = compare_span a.span b.span in
  if c <> 0 then c
  else
    let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c
      else
        let c = Option.compare String.compare a.rule b.rule in
        if c <> 0 then c
        else
          let c = String.compare a.message b.message in
          if c <> 0 then c
          else
            let c = Option.compare String.compare a.hint b.hint in
            if c <> 0 then c
            else
              List.compare
                (fun (ra, sa) (rb, sb) ->
                  let c = String.compare ra rb in
                  if c <> 0 then c else compare_span (Some sa) (Some sb))
                a.related b.related

let normalize ds = List.sort_uniq compare ds
let errors ds = List.filter is_error ds
let warnings ds = List.filter is_warning ds

let summary ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

(* Checkers (lint, verify) publish their code tables in this shape so the
   CLI and docs can enumerate them uniformly.  The P-code namespace is
   shared: P0xx static lint, P2xx semantic verification. *)
type catalogue = (string * severity * string) list

let catalogue_find catalogue code =
  List.find_map
    (fun (c, sev, descr) -> if String.equal c code then Some (sev, descr) else None)
    catalogue

let catalogue_codes catalogue = List.map (fun (c, _, _) -> c) catalogue

let to_string d =
  let b = Buffer.create 80 in
  Buffer.add_string b (severity_to_string d.severity);
  Buffer.add_string b ("[" ^ d.code ^ "]");
  (match d.span with
  | Some s -> Buffer.add_string b (Printf.sprintf " %d:%d" s.line s.column)
  | None -> ());
  (match d.rule with
  | Some r -> Buffer.add_string b (" (" ^ r ^ ")")
  | None -> ());
  Buffer.add_string b (": " ^ d.message);
  (match d.hint with
  | Some h -> Buffer.add_string b ("\n  hint: " ^ h)
  | None -> ());
  List.iter
    (fun (r, s) ->
      Buffer.add_string b
        (Printf.sprintf "\n  related: %s at %d:%d" r s.line s.column))
    d.related;
  Buffer.contents b

let pp ppf d = Format.pp_print_string ppf (to_string d)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  let fields =
    [
      Some (Printf.sprintf "\"code\":%s" (json_string d.code));
      Some
        (Printf.sprintf "\"severity\":%s"
           (json_string (severity_to_string d.severity)));
      Option.map (fun r -> Printf.sprintf "\"rule\":%s" (json_string r)) d.rule;
      Option.map
        (fun s -> Printf.sprintf "\"line\":%d,\"column\":%d" s.line s.column)
        d.span;
      Some (Printf.sprintf "\"message\":%s" (json_string d.message));
      Option.map (fun h -> Printf.sprintf "\"hint\":%s" (json_string h)) d.hint;
      (match d.related with
      | [] -> None
      | rs ->
        Some
          (Printf.sprintf "\"related\":[%s]"
             (String.concat ","
                (List.map
                   (fun (r, s) ->
                     Printf.sprintf "{\"rule\":%s,\"line\":%d,\"column\":%d}"
                       (json_string r) s.line s.column)
                   rs))));
    ]
  in
  "{" ^ String.concat "," (List.filter_map Fun.id fields) ^ "}"
