module Value = Prairie_value.Value
module Predicate = Prairie_value.Predicate

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Cmp of Predicate.comparison

type unop =
  | Not
  | Neg

type expr =
  | Const of Value.t
  | Desc of string
  | Prop of string * string
  | Call of string * expr list
  | Binop of binop * expr * expr
  | Unop of unop * expr

type stmt =
  | Assign_desc of string * expr
  | Assign_prop of string * string * expr

let tt = Const (Value.Bool true)
let int i = Const (Value.Int i)
let float f = Const (Value.Float f)
let str s = Const (Value.Str s)
let prop d p = Prop (d, p)
let call name args = Call (name, args)
let ( &&& ) a b = Binop (And, a, b)
let ( ||| ) a b = Binop (Or, a, b)
let ( === ) a b = Binop (Cmp Predicate.Eq, a, b)
let ( =/= ) a b = Binop (Cmp Predicate.Ne, a, b)

let assigned_descriptor = function
  | Assign_desc (d, _) -> d
  | Assign_prop (d, _, _) -> d

let assigned_property = function
  | Assign_desc _ -> None
  | Assign_prop (_, p, _) -> Some p

let rec read_descs_acc acc = function
  | Const _ -> acc
  | Desc d | Prop (d, _) -> if List.mem d acc then acc else d :: acc
  | Call (_, args) -> List.fold_left read_descs_acc acc args
  | Binop (_, a, b) -> read_descs_acc (read_descs_acc acc a) b
  | Unop (_, a) -> read_descs_acc acc a

let read_descriptors e = List.sort String.compare (read_descs_acc [] e)

let stmt_read_descriptors = function
  | Assign_desc (_, e) | Assign_prop (_, _, e) -> read_descriptors e

let helpers_used stmts =
  let rec go acc = function
    | Const _ | Desc _ | Prop _ -> acc
    | Call (name, args) ->
      let acc = if List.mem name acc then acc else name :: acc in
      List.fold_left go acc args
    | Binop (_, a, b) -> go (go acc a) b
    | Unop (_, a) -> go acc a
  in
  let acc =
    List.fold_left
      (fun acc s ->
        match s with Assign_desc (_, e) | Assign_prop (_, _, e) -> go acc e)
      [] stmts
  in
  List.sort String.compare acc

let rec substitute_desc_expr f = function
  | Const _ as e -> e
  | Desc d -> Desc (f d)
  | Prop (d, p) -> Prop (f d, p)
  | Call (name, args) -> Call (name, List.map (substitute_desc_expr f) args)
  | Binop (op, a, b) ->
    Binop (op, substitute_desc_expr f a, substitute_desc_expr f b)
  | Unop (op, a) -> Unop (op, substitute_desc_expr f a)

let substitute_desc f = function
  | Assign_desc (d, e) -> Assign_desc (f d, substitute_desc_expr f e)
  | Assign_prop (d, p, e) -> Assign_prop (f d, p, substitute_desc_expr f e)

(* Sound constant folding: [Some v] only when the expression evaluates to
   [v] under EVERY binding of descriptors and helper functions.  [And]/[Or]
   short-circuit on a constant absorbing element, so [FALSE && f(D1)] folds
   even though the call does not.  Arithmetic and comparisons on
   incompatible constants ([1 + "x"]) would raise at run time, not produce
   a value — those fold to [None], never to a guess. *)
let rec fold_const = function
  | Const v -> Some v
  | Desc _ | Prop _ | Call _ -> None
  | Unop (Not, a) -> (
    match fold_const a with
    | Some (Value.Bool b) -> Some (Value.Bool (not b))
    | _ -> None)
  | Unop (Neg, a) -> (
    match fold_const a with
    | Some (Value.Int i) -> Some (Value.Int (-i))
    | Some (Value.Float f) -> Some (Value.Float (-.f))
    | _ -> None)
  | Binop (And, a, b) -> (
    match (fold_const a, fold_const b) with
    | Some (Value.Bool false), _ | _, Some (Value.Bool false) ->
      Some (Value.Bool false)
    | Some (Value.Bool true), Some (Value.Bool true) -> Some (Value.Bool true)
    | _ -> None)
  | Binop (Or, a, b) -> (
    match (fold_const a, fold_const b) with
    | Some (Value.Bool true), _ | _, Some (Value.Bool true) ->
      Some (Value.Bool true)
    | Some (Value.Bool false), Some (Value.Bool false) ->
      Some (Value.Bool false)
    | _ -> None)
  | Binop (Cmp c, a, b) -> (
    match (fold_const a, fold_const b) with
    | Some va, Some vb -> (
      try Some (Value.Bool (Value.cmp c va vb)) with Value.Type_error _ -> None)
    | _ -> None)
  | Binop (((Add | Sub | Mul | Div) as op), a, b) -> (
    match (fold_const a, fold_const b) with
    | Some va, Some vb -> (
      let f =
        match op with
        | Add -> Value.add
        | Sub -> Value.sub
        | Mul -> Value.mul
        | Div -> Value.div
        | _ -> assert false
      in
      try Some (f va vb) with Value.Type_error _ | Division_by_zero -> None)
    | _ -> None)

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | And -> "&&"
  | Or -> "||"
  | Cmp c -> Predicate.comparison_to_string c

let rec pp_expr ppf = function
  | Const v -> Value.pp ppf v
  | Desc d -> Format.pp_print_string ppf d
  | Prop (d, p) -> Format.fprintf ppf "%s.%s" d p
  | Call (name, args) ->
    Format.fprintf ppf "%s(" name;
    List.iteri
      (fun i a ->
        if i > 0 then Format.fprintf ppf ", ";
        pp_expr ppf a)
      args;
    Format.fprintf ppf ")"
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | Unop (Not, a) -> Format.fprintf ppf "!(%a)" pp_expr a
  | Unop (Neg, a) -> Format.fprintf ppf "-(%a)" pp_expr a

let pp_stmt ppf = function
  | Assign_desc (d, e) -> Format.fprintf ppf "%s = %a;" d pp_expr e
  | Assign_prop (d, p, e) -> Format.fprintf ppf "%s.%s = %a;" d p pp_expr e

let pp_stmts ppf stmts =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf "@,";
      pp_stmt ppf s)
    stmts;
  Format.fprintf ppf "@]"
